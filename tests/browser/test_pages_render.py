"""Page generator and render-pipeline tests."""

import pytest

from repro.browser.browser import browser_tasks
from repro.browser.pages import (
    HIGH_INTENSITY_PAGES,
    LOW_INTENSITY_PAGES,
    alexa_pages,
    build_page,
    page_by_name,
    page_names,
)
from repro.browser.render import (
    RenderCostModel,
    build_render_workload,
    render_workload_for,
)


class TestPageGeneration:
    def test_eighteen_pages(self):
        assert len(alexa_pages()) == 18
        assert len(page_names()) == 18

    def test_class_lists_partition_the_pages(self):
        assert set(LOW_INTENSITY_PAGES) | set(HIGH_INTENSITY_PAGES) == set(
            page_names()
        )
        assert not set(LOW_INTENSITY_PAGES) & set(HIGH_INTENSITY_PAGES)

    def test_generation_is_deterministic(self):
        page = page_by_name("reddit")
        rebuilt = build_page(page.profile)
        assert rebuilt.html == page.html
        assert rebuilt.features == page.features

    def test_unknown_page_rejected(self):
        with pytest.raises(KeyError):
            page_by_name("geocities")

    def test_census_features_are_plausible(self):
        for page in alexa_pages():
            assert page.features.dom_nodes > 100
            assert page.features.a_tags > 0
            assert page.features.div_tags > 0
            assert page.features.href_attributes >= page.features.a_tags

    def test_high_complexity_pages_have_more_nodes(self):
        low_max = max(
            page_by_name(n).features.dom_nodes for n in LOW_INTENSITY_PAGES
        )
        high_min = min(
            page_by_name(n).features.dom_nodes for n in HIGH_INTENSITY_PAGES
        )
        assert high_min > low_max * 0.8  # heavy pages are structurally bigger

    def test_markup_is_parseable_real_html(self):
        page = page_by_name("amazon")
        assert page.html.startswith("<!DOCTYPE html>")
        assert page.dom.find_all("body")
        assert page.dom.find_all("img")

    def test_stylesheet_rule_count_matches_profile(self):
        page = page_by_name("espn")
        assert len(page.stylesheet) == page.profile.css_rules


class TestRenderWorkload:
    def test_four_pipeline_stages_in_order(self):
        workload = build_render_workload(page_by_name("msn"))
        assert [phase.name for phase in workload.phases] == [
            "parse",
            "style",
            "layout",
            "paint",
        ]

    def test_instructions_grow_with_page_complexity(self):
        small = build_render_workload(page_by_name("360"))
        large = build_render_workload(page_by_name("aliexpress"))
        assert large.total_instructions > 3 * small.total_instructions

    def test_style_stage_reflects_selector_matching_work(self):
        workload = build_render_workload(page_by_name("bbc"))
        stats = workload.style_stats
        assert stats.candidate_checks == stats.elements * len(
            page_by_name("bbc").stylesheet
        )

    def test_cost_model_scales_stage_budgets(self):
        page = page_by_name("cnn")
        base = build_render_workload(page)
        doubled = build_render_workload(
            page, RenderCostModel(parse_per_node=180_000.0)
        )
        assert doubled.phases[0].instructions > base.phases[0].instructions
        assert doubled.phases[1].instructions == base.phases[1].instructions

    def test_media_weight_drives_paint_memory_character(self):
        lean = build_render_workload(page_by_name("alipay")).phases[3]
        rich = build_render_workload(page_by_name("imgur")).phases[3]
        assert rich.l2_apki > lean.l2_apki
        assert rich.working_set_bytes > lean.working_set_bytes

    def test_cached_lookup_returns_same_workload(self):
        assert render_workload_for("reddit") is render_workload_for("reddit")


class TestBrowserTasks:
    def test_main_gates_helper_does_not(self):
        tasks = browser_tasks(page_by_name("reddit"))
        assert tasks.main.gating is True
        assert tasks.helper.gating is False

    def test_cores_are_distinct(self):
        tasks = browser_tasks(page_by_name("reddit"))
        assert tasks.main.core != tasks.helper.core

    def test_helper_work_is_a_fraction_of_main(self):
        tasks = browser_tasks(page_by_name("reddit"), helper_fraction=0.5)
        main_total = sum(p.instructions for p in tasks.main.phases)
        helper_total = sum(p.instructions for p in tasks.helper.phases)
        assert helper_total == pytest.approx(0.5 * main_total)

    def test_invalid_helper_fraction_rejected(self):
        with pytest.raises(ValueError):
            browser_tasks(page_by_name("reddit"), helper_fraction=0.0)
        with pytest.raises(ValueError):
            browser_tasks(page_by_name("reddit"), helper_fraction=1.5)

    def test_as_list_orders_main_first(self):
        tasks = browser_tasks(page_by_name("reddit"))
        assert tasks.as_list()[0] is tasks.main
