"""Top-level API tests (quick_run plumbing)."""

import pytest

import repro
import repro.api


@pytest.fixture(autouse=True)
def small_bundle(monkeypatch, small_models):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setattr(
        repro.api, "default_predictor", lambda config=None: small_models.predictor
    )


class TestQuickRun:
    def test_dora_run_returns_a_result(self):
        result = repro.quick_run("amazon", kernel="bfs", governor="DORA")
        assert result.load_time_s is not None
        assert result.ppw > 0
        assert result.governor_name == "DORA"

    def test_governor_names_are_case_insensitive(self):
        result = repro.quick_run("amazon", governor="dora_no_lkg")
        assert result.governor_name == "DORA_no_lkg"

    def test_plain_governors_skip_training(self):
        result = repro.quick_run("amazon", governor="performance")
        assert result.governor_name == "performance"

    def test_unknown_governor_rejected(self):
        with pytest.raises(KeyError):
            repro.quick_run("amazon", governor="warp-speed")

    def test_unknown_page_rejected(self):
        with pytest.raises(KeyError):
            repro.quick_run("geocities", governor="performance")

    def test_trace_recording_toggle(self):
        traced = repro.quick_run("amazon", governor="performance")
        untraced = repro.quick_run(
            "amazon", governor="performance", record_trace=False
        )
        assert len(traced.trace) > 0
        assert len(untraced.trace) == 0

    def test_deadline_is_forwarded(self):
        tight = repro.quick_run(
            "espn", kernel="backprop", governor="DORA", deadline_s=1.0
        )
        loose = repro.quick_run(
            "espn", kernel="backprop", governor="DORA", deadline_s=30.0
        )
        assert tight.decisions.frequencies_hz[-1] >= (
            loose.decisions.frequencies_hz[-1]
        )

    def test_lazy_wrappers_resolve(self):
        assert repro.__version__ == "1.0.0"
        assert callable(repro.default_predictor)
