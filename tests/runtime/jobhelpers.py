"""Module-level job functions for runtime tests.

Jobs reference these by dotted path (``tests.runtime.jobhelpers:fn``),
so they resolve in worker processes under any multiprocessing start
method, not just fork.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


def echo(value):
    """Return the input (the smallest possible job)."""
    return value


def square(value):
    """value**2, tagged with the executing PID via a tuple."""
    return value * value


def pid_of_worker():
    """The PID of the process executing the job."""
    return os.getpid()


def crash_once(flag_dir: str):
    """Kill the worker process hard on the first call, succeed after.

    The flag file persists across the crash, so the retried job (in a
    rebuilt pool) takes the surviving branch.  ``os._exit`` skips all
    cleanup -- exactly what a segfaulting worker looks like to the
    parent (``BrokenProcessPool``).
    """
    flag = Path(flag_dir) / "crashed-once"
    if not flag.exists():
        flag.write_text("crashed")
        os._exit(23)
    return "survived"


def crash_always():
    """Kill the worker process on every attempt."""
    os._exit(23)


def sleep_then_return(seconds: float, value):
    """Sleep (to trip per-job timeouts), then return the value."""
    time.sleep(seconds)
    return value


def fail_with(message: str):
    """Raise a deterministic error."""
    raise ValueError(message)


def echo_loop(conn):
    """PersistentWorker message loop: echo until told to stop.

    Understands three control messages -- ``"stop"`` exits cleanly,
    ``"crash"`` kills the process hard (``os._exit`` skips all
    cleanup, like a segfault), ``"pid"`` answers with the worker PID.
    Everything else is echoed back.
    """
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message == "stop":
            return
        if message == "crash":
            os._exit(23)
        if message == "pid":
            conn.send(os.getpid())
        else:
            conn.send(message)


def scaling_loop(conn, factor):
    """Message loop with a constructor argument (exercises ``args``)."""
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message == "stop":
            return
        conn.send(message * factor)


def memoized_build(cache_dir: str, key: str, payload_size: int):
    """Hammer one memoized key (multi-process cache stress).

    Each process points the cache at the same directory and builds the
    same deterministic artifact; racing writers must never corrupt the
    published file.
    """
    os.environ["REPRO_CACHE_DIR"] = cache_dir  # repro: allow[R004]
    os.environ.pop("REPRO_NO_CACHE", None)  # repro: allow[R004]
    from repro.experiments import cache

    def build():
        # A payload large enough that the pickle write takes a
        # non-trivial window, widening the race surface.
        return {"key": key, "payload": list(range(payload_size))}

    return cache.memoized("stress", (key,), build)
