"""Unit tests for the job abstraction and progress telemetry."""

import pytest

from repro.runtime import (
    Job,
    JobResult,
    ProgressTracker,
    execute,
    register,
    resolve,
)


class TestJobResolution:
    def test_registered_kind_resolves(self):
        assert resolve("sweep-point").__name__ == "sweep_point_job"

    def test_dotted_path_resolves(self):
        fn = resolve("tests.runtime.jobhelpers:square")
        assert fn(7) == 49

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            resolve("does-not-exist")

    def test_register_decorator_installs_kind(self):
        @register("test-double")
        def _double(value):
            return 2 * value

        assert execute(Job(kind="test-double", spec={"value": 21})) == 42

    def test_execute_passes_spec_as_kwargs(self):
        job = Job(kind="tests.runtime.jobhelpers:echo", spec={"value": "x"})
        assert execute(job) == "x"

    def test_display_label_falls_back_to_kind(self):
        assert Job(kind="k").display_label == "k"
        assert Job(kind="k", label="nice").display_label == "nice"

    def test_job_result_ok(self):
        job = Job(kind="k")
        assert JobResult(job=job, index=0, value=1).ok
        assert not JobResult(job=job, index=0, error="boom").ok


class TestProgressTracker:
    def _tracker(self, total=4, **kwargs):
        lines = []
        clock = iter(float(i) for i in range(1000))
        tracker = ProgressTracker(
            total=total,
            label="unit",
            callback=lines.append,
            interval_s=0.0,
            clock=lambda: next(clock),
            **kwargs,
        )
        return tracker, lines

    def test_counters_accumulate(self):
        tracker, _ = self._tracker()
        job = Job(kind="k", label="j")
        tracker.cached(job)
        tracker.started(job)
        tracker.finished(job, duration_s=2.0)
        tracker.started(job)
        tracker.failed(job, "boom")
        snapshot = tracker.snapshot()
        assert snapshot.done == 2
        assert snapshot.cached == 1
        assert snapshot.built == 1
        assert snapshot.failed == 1
        assert snapshot.running == 0
        assert snapshot.mean_duration_s == pytest.approx(2.0)

    def test_queued_and_complete(self):
        tracker, _ = self._tracker(total=3)
        job = Job(kind="k")
        tracker.cached(job)
        snapshot = tracker.snapshot()
        assert snapshot.queued == 2
        assert not snapshot.complete
        tracker.finished(job, 0.1)
        tracker.failed(job, "x")
        assert tracker.snapshot().complete

    def test_line_mentions_the_essentials(self):
        tracker, lines = self._tracker(total=2)
        job = Job(kind="k", label="combo")
        tracker.cached(job)
        tracker.started(job)
        tracker.finished(job, 1.0)
        tracker.close()
        final = lines[-1]
        assert "[unit] 2/2 done" in final
        assert "1 cached" in final

    def test_failure_emits_labelled_line(self):
        tracker, lines = self._tracker()
        tracker.failed(Job(kind="k", label="espn+bfs"), "exploded")
        assert any("FAILED espn+bfs" in line for line in lines)

    def test_retry_emits_line_and_counts(self):
        tracker, lines = self._tracker()
        tracker.retrying(Job(kind="k", label="j"), attempt=1)
        assert tracker.snapshot().retried == 1
        assert any("retrying j" in line for line in lines)

    def test_silent_without_callback(self):
        tracker = ProgressTracker(total=1, callback=None)
        tracker.started(Job(kind="k"))
        tracker.finished(Job(kind="k"), 0.1)
        tracker.close()  # must not raise
        assert tracker.snapshot().done == 1

    def test_interval_rate_limits_periodic_lines(self):
        lines = []
        times = iter([0.0, 0.1, 0.2, 0.3, 5.0, 5.0, 6.0])
        tracker = ProgressTracker(
            total=10,
            callback=lines.append,
            interval_s=2.0,
            clock=lambda: next(times),
        )
        job = Job(kind="k")
        tracker.started(job)      # t=0.1 -> first report
        tracker.finished(job, 0)  # t=0.2 -> suppressed
        tracker.started(job)      # t=0.3 -> suppressed
        tracker.finished(job, 0)  # t=5.0 -> reported
        assert len(lines) == 2
