"""Pool behavior: serial fallback, crash retry, timeouts, cache pass.

These tests use tiny dotted-path jobs (``tests.runtime.jobhelpers``)
so each scenario runs in milliseconds; the simulation-level behavior
is covered by the determinism tests.
"""

import os

import pytest

import repro.runtime.pool as pool_module
from repro.runtime import (
    Job,
    JobError,
    configure,
    in_worker,
    resolve_workers,
    run_jobs,
)


@pytest.fixture(autouse=True)
def clean_runtime_config(monkeypatch):
    """Each test starts from unconfigured defaults and a clean env."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv(pool_module.WORKER_ENV, raising=False)
    monkeypatch.delenv(pool_module.FORCE_POOL_ENV, raising=False)
    configure(workers=None, progress=None)
    yield
    configure(workers=None, progress=None)


def _echo_jobs(count):
    return [
        Job(kind="tests.runtime.jobhelpers:echo", spec={"value": i})
        for i in range(count)
    ]


class TestWorkerResolution:
    def test_defaults_to_serial(self):
        assert resolve_workers(None) == 0

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_env_variable_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_env_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers(None) == 0

    def test_garbage_env_means_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert resolve_workers(None) == 0

    def test_configure_sets_the_default(self):
        configure(workers=5)
        assert resolve_workers(None) == 5

    def test_nested_calls_inside_workers_stay_serial(self, monkeypatch):
        monkeypatch.setenv(pool_module.WORKER_ENV, "1")
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert in_worker()
        assert resolve_workers(None) == 0


class TestSerialExecution:
    def test_results_in_submission_order(self):
        results = run_jobs(_echo_jobs(5), workers=0)
        assert [r.value for r in results] == [0, 1, 2, 3, 4]
        assert all(r.worker_pid == os.getpid() for r in results)

    def test_repro_workers_zero_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        results = run_jobs(_echo_jobs(3))
        assert all(r.worker_pid == os.getpid() for r in results)

    def test_errors_raise_by_default(self):
        jobs = [
            Job(kind="tests.runtime.jobhelpers:fail_with",
                spec={"message": "kaboom"}, label="bad")
        ]
        with pytest.raises(JobError, match="kaboom"):
            run_jobs(jobs, workers=0)

    def test_errors_collected_when_not_raising(self):
        jobs = _echo_jobs(1) + [
            Job(kind="tests.runtime.jobhelpers:fail_with",
                spec={"message": "kaboom"})
        ]
        results = run_jobs(jobs, workers=0, raise_on_error=False)
        assert results[0].ok and results[0].value == 0
        assert not results[1].ok
        assert "kaboom" in results[1].error

    def test_serial_timeout_enforced(self):
        jobs = [
            Job(
                kind="tests.runtime.jobhelpers:sleep_then_return",
                spec={"seconds": 30.0, "value": "never"},
                timeout_s=0.2,
            )
        ]
        results = run_jobs(jobs, workers=0, raise_on_error=False)
        assert not results[0].ok
        assert "timed out" in results[0].error


class TestPoolExecution:
    @pytest.fixture(autouse=True)
    def force_pool(self, monkeypatch):
        """Exercise the pool machinery even on single-CPU hosts."""
        monkeypatch.setenv(pool_module.FORCE_POOL_ENV, "1")

    def test_jobs_run_in_worker_processes(self):
        jobs = [
            Job(kind="tests.runtime.jobhelpers:pid_of_worker")
            for _ in range(4)
        ]
        results = run_jobs(jobs, workers=2)
        assert all(r.value != os.getpid() for r in results)
        assert all(r.value == r.worker_pid for r in results)

    def test_results_in_submission_order(self):
        results = run_jobs(_echo_jobs(8), workers=4)
        assert [r.value for r in results] == list(range(8))

    def test_per_job_timeout(self):
        jobs = [
            Job(
                kind="tests.runtime.jobhelpers:sleep_then_return",
                spec={"seconds": 30.0, "value": "never"},
                timeout_s=0.2,
                label="sleeper",
            ),
            Job(kind="tests.runtime.jobhelpers:echo", spec={"value": "ok"}),
        ]
        results = run_jobs(jobs, workers=2, raise_on_error=False)
        assert not results[0].ok
        assert "timed out" in results[0].error
        assert results[1].value == "ok"

    def test_crashed_worker_job_is_retried_and_completes(self, tmp_path):
        jobs = [
            Job(
                kind="tests.runtime.jobhelpers:crash_once",
                spec={"flag_dir": str(tmp_path)},
                label="crasher",
            )
        ]
        lines = []
        results = run_jobs(jobs, workers=2, progress=lines.append)
        assert results[0].value == "survived"
        assert results[0].attempts >= 2
        assert any("retrying crasher" in line for line in lines)

    def test_suite_survives_a_crash_among_healthy_jobs(self, tmp_path):
        jobs = _echo_jobs(4) + [
            Job(
                kind="tests.runtime.jobhelpers:crash_once",
                spec={"flag_dir": str(tmp_path)},
            )
        ]
        results = run_jobs(jobs, workers=2)
        assert [r.value for r in results[:4]] == [0, 1, 2, 3]
        assert results[4].value == "survived"

    def test_always_crashing_job_fails_after_bounded_attempts(self):
        jobs = [Job(kind="tests.runtime.jobhelpers:crash_always", label="dead")]
        results = run_jobs(
            jobs, workers=2, max_attempts=2, raise_on_error=False,
            backoff_s=0.01,
        )
        assert not results[0].ok
        assert results[0].attempts == 2
        assert "crashed" in results[0].error

    def test_unstartable_pool_degrades_to_serial(self, monkeypatch):
        def explode(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(pool_module, "ProcessPoolExecutor", explode)
        lines = []
        results = run_jobs(_echo_jobs(3), workers=4, progress=lines.append)
        assert [r.value for r in results] == [0, 1, 2]
        assert all(r.worker_pid == os.getpid() for r in results)
        assert any("pool unavailable" in line for line in lines)


class TestSerialDowngrade:
    def test_single_worker_runs_serially(self):
        lines = []
        results = run_jobs(_echo_jobs(3), workers=1, progress=lines.append)
        assert [r.value for r in results] == [0, 1, 2]
        assert all(r.worker_pid == os.getpid() for r in results)
        assert any("running serially" in line for line in lines)

    def test_single_cpu_host_runs_serially(self, monkeypatch):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        lines = []
        results = run_jobs(_echo_jobs(3), workers=4, progress=lines.append)
        assert all(r.worker_pid == os.getpid() for r in results)
        assert any("single-CPU host" in line for line in lines)

    def test_force_pool_overrides_the_downgrade(self, monkeypatch):
        monkeypatch.setenv(pool_module.FORCE_POOL_ENV, "1")
        jobs = [Job(kind="tests.runtime.jobhelpers:pid_of_worker")]
        results = run_jobs(jobs, workers=1)
        assert results[0].value != os.getpid()

    def test_two_workers_on_multicore_keep_the_pool(self, monkeypatch):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 4)
        jobs = [
            Job(kind="tests.runtime.jobhelpers:pid_of_worker")
            for _ in range(2)
        ]
        results = run_jobs(jobs, workers=2)
        assert all(r.value != os.getpid() for r in results)


class TestCacheAwareScheduling:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)

    def _cached_job(self, value):
        return Job(
            kind="tests.runtime.jobhelpers:echo",
            spec={"value": value},
            cache_family="unit",
            cache_key=("echo", value),
        )

    def test_warm_jobs_skip_execution(self):
        from repro.experiments import cache

        cache.store("unit", ("echo", 1), "from-the-cache")
        results = run_jobs([self._cached_job(1)], workers=0)
        assert results[0].from_cache
        assert results[0].value == "from-the-cache"

    def test_cold_jobs_execute(self):
        results = run_jobs([self._cached_job(2)], workers=0)
        assert not results[0].from_cache
        assert results[0].value == 2

    def test_progress_reports_cache_hits(self):
        from repro.experiments import cache

        cache.store("unit", ("echo", 3), 3)
        lines = []
        run_jobs(
            [self._cached_job(3), self._cached_job(4)],
            workers=0,
            progress=lines.append,
        )
        assert any("1 cached" in line for line in lines)


class TestPersistentWorker:
    """Long-lived message-loop processes (the serving-shard substrate)."""

    def _worker(self, target="echo_loop", args=()):
        from tests.runtime import jobhelpers

        return pool_module.PersistentWorker(
            getattr(jobhelpers, target), args=args, name="unit"
        )

    def test_round_trips_messages(self):
        worker = self._worker()
        try:
            worker.send({"n": 1})
            assert worker.recv() == {"n": 1}
            worker.send("again")
            assert worker.recv() == "again"
        finally:
            worker.stop(message="stop")
        assert not worker.alive

    def test_runs_in_a_marked_worker_process(self):
        worker = self._worker()
        try:
            worker.send("pid")
            assert worker.recv() != os.getpid()
        finally:
            worker.stop(message="stop")

    def test_constructor_args_reach_the_loop(self):
        worker = self._worker(target="scaling_loop", args=(3,))
        try:
            worker.send(7)
            assert worker.recv() == 21
        finally:
            worker.stop(message="stop")

    def test_restart_respawns_after_a_crash(self):
        worker = self._worker()
        try:
            worker.send("pid")
            first_pid = worker.recv()
            worker.send("crash")
            with pytest.raises((EOFError, OSError)):
                worker.recv()
            # The pipe EOFs at _exit; give the OS a moment to reap.
            worker._process.join(5.0)
            assert not worker.alive
            worker.restart()
            assert worker.alive
            assert worker.spawns == 2
            worker.send("pid")
            assert worker.recv() not in (first_pid, os.getpid())
        finally:
            worker.stop(message="stop")

    def test_send_to_dead_worker_raises_broken_pipe(self):
        worker = self._worker()
        worker.stop(message="stop")
        with pytest.raises(BrokenPipeError):
            worker.send("hello")

    def test_stop_is_idempotent(self):
        worker = self._worker()
        worker.stop(message="stop")
        worker.stop(message="stop")
        assert not worker.alive

    def test_poll_times_out_on_silence(self):
        worker = self._worker()
        try:
            assert not worker.poll(0.01)
            worker.send("ping")
            assert worker.poll(2.0)
            assert worker.recv() == "ping"
        finally:
            worker.stop(message="stop")
