"""Parallel execution must be bit-identical to serial execution.

The acceptance bar for the runtime: fanning work over processes is an
implementation detail, never a source of numeric drift.  These tests
run the same workloads serially and with a worker pool and compare
every result field.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.harness import evaluate_suite, frequency_sweep
from repro.experiments.suite import WorkloadCombo
from repro.models.training import TrainingConfig, run_campaign
from repro.workloads.classification import MemoryIntensity


@pytest.fixture(autouse=True)
def cold_cache(monkeypatch):
    """Force real computation so parallel and serial paths both run."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


FOUR_COMBOS = (
    WorkloadCombo("amazon", "kmeans", MemoryIntensity.LOW, True),
    WorkloadCombo("msn", "bfs", MemoryIntensity.MEDIUM, True),
    WorkloadCombo("espn", "backprop", MemoryIntensity.HIGH, True),
    WorkloadCombo("cnn", "srad2", MemoryIntensity.MEDIUM, False),
)


def test_parallel_evaluate_suite_matches_serial(small_predictor, fast_config):
    governors = ("interactive", "performance", "EE")
    serial = evaluate_suite(
        small_predictor, combos=FOUR_COMBOS, governors=governors,
        config=fast_config, workers=0,
    )
    parallel = evaluate_suite(
        small_predictor, combos=FOUR_COMBOS, governors=governors,
        config=fast_config, workers=4,
    )
    assert len(serial) == len(parallel) == len(FOUR_COMBOS)
    for combo_serial, combo_parallel in zip(serial, parallel):
        assert combo_serial.combo == combo_parallel.combo
        assert set(combo_serial.runs) == set(combo_parallel.runs)
        for name in combo_serial.runs:
            lhs = combo_serial.runs[name]
            rhs = combo_parallel.runs[name]
            assert dataclasses.asdict(lhs) == dataclasses.asdict(rhs), (
                f"{combo_serial.combo.label}/{name} diverged between "
                "serial and parallel execution"
            )
        assert dataclasses.asdict(combo_serial) == dataclasses.asdict(
            combo_parallel
        )


def test_parallel_sweep_matches_serial(fast_config):
    serial = frequency_sweep("msn", "bfs", fast_config, workers=0)
    parallel = frequency_sweep("msn", "bfs", fast_config, workers=2)
    assert [dataclasses.asdict(p) for p in serial] == [
        dataclasses.asdict(p) for p in parallel
    ]


def test_parallel_campaign_matches_serial():
    config = TrainingConfig(
        pages=("amazon",),
        freqs_hz=(1190.4e6, 2265.6e6),
        dt_s=0.004,
        seed=11,
    )
    serial = run_campaign(config, workers=0)
    parallel = run_campaign(config, workers=2)
    assert len(serial) == len(parallel)
    for lhs, rhs in zip(serial, parallel):
        assert dataclasses.asdict(lhs) == dataclasses.asdict(rhs)
