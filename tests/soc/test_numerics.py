"""Struct-of-arrays thermal sweep vs the scalar recurrence."""

import pytest

from repro.soc.leakage import nexus5_leakage_parameters
from repro.soc.numerics import advance_thermal_rows, integrate_thermal_rows
from repro.soc.thermal import ThermalModel


def _rows():
    """Three heterogeneous rows: dt, ambient and power all differ."""
    evaluator = nexus5_leakage_parameters().bound_evaluator(1.05)
    hot_evaluator = nexus5_leakage_parameters().bound_evaluator(1.225)
    return dict(
        steps=[7, 4, 1],
        dt_s=[0.002, 0.004, 0.002],
        decay=[],  # filled by the fixture from per-row tau values
        ambient_c=[25.0, 5.0, 35.0],
        r_th_c_per_w=[9.0, 9.0, 9.0],
        non_leakage_soc_w=[1.5, 0.4, 2.75],
        rest_of_device_w=[0.35, 0.35, 0.5],
        leak_power_of_c=[evaluator, evaluator, hot_evaluator],
        temperature_c=[48.0, 26.0, 58.0],
        energy_j=[0.0, 1.25, 10.5],
        temperature_integral=[0.0, 30.0, 700.0],
    )


def _scalar_reference(kwargs):
    """Drive each row through ThermalModel.integrate_regime."""
    import math

    outcomes = []
    for row in range(len(kwargs["steps"])):
        model = ThermalModel(
            r_th_c_per_w=kwargs["r_th_c_per_w"][row],
            ambient_c=kwargs["ambient_c"][row],
            soc_temperature_c=kwargs["temperature_c"][row],
        )
        # Recover tau from the row's decay factor so both paths use
        # the identical exp(-dt/tau).
        model.tau_s = -kwargs["dt_s"][row] / math.log(kwargs["decay"][row])
        leak, total, temp = model.integrate_regime(
            steps=kwargs["steps"][row],
            dt_s=kwargs["dt_s"][row],
            non_leakage_soc_w=kwargs["non_leakage_soc_w"][row],
            rest_of_device_w=kwargs["rest_of_device_w"][row],
            leak_power_of_c=kwargs["leak_power_of_c"][row],
        )
        energy = kwargs["energy_j"][row]
        integral = kwargs["temperature_integral"][row]
        for power, temperature in zip(total, temp):
            energy += power * kwargs["dt_s"][row]
            integral += temperature * kwargs["dt_s"][row]
        outcomes.append(
            (leak, total, temp, model.soc_temperature_c, energy, integral)
        )
    return outcomes


@pytest.fixture
def kwargs():
    import math

    values = _rows()
    values["decay"] = [
        math.exp(-dt / tau)
        for dt, tau in zip(values["dt_s"], (2.5, 1.75, 2.5))
    ]
    return values


class TestIntegrateThermalRows:
    def test_bit_identical_to_scalar_regimes(self, kwargs):
        leak_w, total_w, temp_c, final_t, final_e, final_i = (
            integrate_thermal_rows(**kwargs)
        )
        for row, expected in enumerate(_scalar_reference(kwargs)):
            steps = kwargs["steps"][row]
            exp_leak, exp_total, exp_temp, exp_t, exp_e, exp_i = expected
            assert list(leak_w[row, :steps]) == exp_leak
            assert list(total_w[row, :steps]) == exp_total
            assert list(temp_c[row, :steps]) == exp_temp
            assert float(final_t[row]) == exp_t
            assert float(final_e[row]) == exp_e
            assert float(final_i[row]) == exp_i

    def test_inputs_are_not_mutated(self, kwargs):
        temperature = list(kwargs["temperature_c"])
        energy = list(kwargs["energy_j"])
        integral = list(kwargs["temperature_integral"])
        integrate_thermal_rows(**kwargs)
        assert kwargs["temperature_c"] == temperature
        assert kwargs["energy_j"] == energy
        assert kwargs["temperature_integral"] == integral

    def test_rejects_increasing_step_counts(self, kwargs):
        kwargs["steps"] = [4, 7, 1]
        with pytest.raises(ValueError, match="non-increasing"):
            integrate_thermal_rows(**kwargs)

    def test_rejects_empty_rows(self, kwargs):
        kwargs["steps"] = [7, 4, 0]
        with pytest.raises(ValueError, match="at least one step"):
            integrate_thermal_rows(**kwargs)

    def test_no_rows_returns_empty(self):
        leak_w, total_w, temp_c, final_t, final_e, final_i = (
            integrate_thermal_rows(
                steps=[], dt_s=[], decay=[], ambient_c=[],
                r_th_c_per_w=[], non_leakage_soc_w=[],
                rest_of_device_w=[], leak_power_of_c=[],
                temperature_c=[], energy_j=[], temperature_integral=[],
            )
        )
        for value in (leak_w, total_w, temp_c, final_t, final_e, final_i):
            assert value.size == 0


class TestAdvanceThermalRows:
    """The no-series row-major variant vs the column sweep."""

    @pytest.mark.parametrize("inline", [False, True])
    def test_finals_match_the_series_sweep(self, kwargs, inline):
        if inline:
            # Voltages matching the two bound_evaluator closures of the
            # fixture rows (1.05, 1.05, 1.225).
            constants = [
                nexus5_leakage_parameters().bound_constants(voltage)
                for voltage in (1.05, 1.05, 1.225)
            ]
        else:
            constants = [None, None, None]
        finals = advance_thermal_rows(
            leak_constants=constants,
            **{k: v for k, v in kwargs.items()},
        )
        _l, _t, _c, final_t, final_e, final_i = integrate_thermal_rows(
            **kwargs
        )
        assert finals[0] == [float(v) for v in final_t]
        assert finals[1] == [float(v) for v in final_e]
        assert finals[2] == [float(v) for v in final_i]

    def test_accepts_any_row_order(self, kwargs):
        """No sorted-steps requirement, unlike the column sweep."""
        order = [1, 2, 0]
        reordered = {
            key: [values[row] for row in order]
            for key, values in kwargs.items()
        }
        finals = advance_thermal_rows(
            leak_constants=[None, None, None], **reordered
        )
        straight = advance_thermal_rows(
            leak_constants=[None, None, None], **kwargs
        )
        for row, source in enumerate(order):
            assert finals[0][row] == straight[0][source]

    def test_inputs_are_not_mutated(self, kwargs):
        temperature = list(kwargs["temperature_c"])
        advance_thermal_rows(
            leak_constants=[None, None, None], **kwargs
        )
        assert kwargs["temperature_c"] == temperature

    def test_rejects_empty_rows(self, kwargs):
        kwargs["steps"] = [7, 0, 1]
        with pytest.raises(ValueError, match="at least one step"):
            advance_thermal_rows(
                leak_constants=[None, None, None], **kwargs
            )
