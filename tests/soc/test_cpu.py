"""CPI model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc.cpu import (
    L2_HIT_CYCLES,
    CpiInputs,
    effective_cpi,
    instructions_retired,
    mpki,
    time_for_instructions,
)


class TestEffectiveCpi:
    def test_no_l2_traffic_means_base_cpi(self):
        inputs = CpiInputs(cpi_base=1.2, l2_apki=0.0, miss_ratio=0.0,
                           miss_penalty_cycles=200.0)
        assert effective_cpi(inputs) == pytest.approx(1.2)

    def test_hits_cost_hit_latency(self):
        inputs = CpiInputs(cpi_base=1.0, l2_apki=10.0, miss_ratio=0.0,
                           miss_penalty_cycles=200.0)
        assert effective_cpi(inputs) == pytest.approx(
            1.0 + 0.01 * L2_HIT_CYCLES
        )

    def test_misses_cost_penalty_divided_by_mlp(self):
        inputs = CpiInputs(cpi_base=1.0, l2_apki=10.0, miss_ratio=1.0,
                           miss_penalty_cycles=200.0, mlp=2.0)
        assert effective_cpi(inputs) == pytest.approx(1.0 + 0.01 * 200.0 / 2.0)

    def test_higher_miss_ratio_raises_cpi(self):
        low = CpiInputs(1.0, 20.0, 0.1, 200.0, 1.5)
        high = CpiInputs(1.0, 20.0, 0.4, 200.0, 1.5)
        assert effective_cpi(high) > effective_cpi(low)

    def test_mlp_hides_part_of_the_penalty(self):
        serial = CpiInputs(1.0, 20.0, 0.3, 200.0, 1.0)
        overlapped = CpiInputs(1.0, 20.0, 0.3, 200.0, 2.0)
        assert effective_cpi(overlapped) < effective_cpi(serial)

    @given(
        cpi_base=st.floats(0.5, 3.0),
        apki=st.floats(0.0, 100.0),
        ratio=st.floats(0.0, 1.0),
        penalty=st.floats(0.0, 500.0),
        mlp_value=st.floats(1.0, 4.0),
    )
    def test_cpi_never_below_base(self, cpi_base, apki, ratio, penalty, mlp_value):
        inputs = CpiInputs(cpi_base, apki, ratio, penalty, mlp_value)
        assert effective_cpi(inputs) >= cpi_base


class TestValidation:
    def test_zero_base_cpi_rejected(self):
        with pytest.raises(ValueError):
            CpiInputs(0.0, 1.0, 0.1, 100.0)

    def test_negative_apki_rejected(self):
        with pytest.raises(ValueError):
            CpiInputs(1.0, -1.0, 0.1, 100.0)

    def test_miss_ratio_above_one_rejected(self):
        with pytest.raises(ValueError):
            CpiInputs(1.0, 1.0, 1.1, 100.0)

    def test_mlp_below_one_rejected(self):
        with pytest.raises(ValueError):
            CpiInputs(1.0, 1.0, 0.1, 100.0, mlp=0.5)


class TestInstructionAccounting:
    def test_retired_matches_frequency_and_cpi(self):
        assert instructions_retired(1.0, 2e9, 2.0) == pytest.approx(1e9)

    def test_utilization_scales_retirement(self):
        full = instructions_retired(1.0, 2e9, 2.0, utilization=1.0)
        half = instructions_retired(1.0, 2e9, 2.0, utilization=0.5)
        assert half == pytest.approx(full / 2)

    def test_time_for_instructions_inverts_retirement(self):
        retired = instructions_retired(0.5, 1.5e9, 1.8)
        assert time_for_instructions(retired, 1.5e9, 1.8) == pytest.approx(0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            instructions_retired(-1.0, 1e9, 1.0)
        with pytest.raises(ValueError):
            instructions_retired(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            instructions_retired(1.0, 1e9, 0.0)
        with pytest.raises(ValueError):
            instructions_retired(1.0, 1e9, 1.0, utilization=2.0)
        with pytest.raises(ValueError):
            time_for_instructions(-1.0, 1e9, 1.0)


class TestMpki:
    def test_mpki_is_apki_times_miss_ratio(self):
        assert mpki(40.0, 0.25) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mpki(-1.0, 0.5)
        with pytest.raises(ValueError):
            mpki(1.0, 2.0)
