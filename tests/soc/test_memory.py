"""LPDDR3 contention model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc.memory import LINE_BYTES, MemoryContentionModel
from repro.soc.specs import nexus5_spec


@pytest.fixture(scope="module")
def model():
    return MemoryContentionModel(spec=nexus5_spec().memory)


class TestUtilization:
    def test_zero_traffic_means_zero_utilization(self, model):
        assert model.utilization(0.0, 800e6) == 0.0

    def test_utilization_is_traffic_over_peak(self, model):
        peak = model.spec.peak_bandwidth_bytes_s(800e6)
        misses = 0.25 * peak / LINE_BYTES
        assert model.utilization(misses, 800e6) == pytest.approx(0.25)

    def test_utilization_caps_below_one(self, model):
        assert model.utilization(1e12, 200e6) == pytest.approx(
            model.max_utilization
        )

    def test_same_traffic_loads_a_slow_bus_more(self, model):
        assert model.utilization(5e6, 200e6) > model.utilization(5e6, 800e6)

    def test_negative_traffic_rejected(self, model):
        with pytest.raises(ValueError):
            model.utilization(-1.0, 800e6)


class TestLatency:
    def test_unloaded_latency_matches_spec(self, model):
        assert model.effective_latency_s(0.0, 400e6) == pytest.approx(
            model.spec.access_latency_s(400e6)
        )

    def test_latency_grows_with_load(self, model):
        quiet = model.effective_latency_s(1e6, 400e6)
        busy = model.effective_latency_s(4e7, 400e6)
        assert busy > quiet

    def test_latency_stays_finite_at_saturation(self, model):
        saturated = model.effective_latency_s(1e12, 200e6)
        assert saturated < 100 * model.spec.access_latency_s(200e6)

    @given(
        misses=st.floats(0, 1e9),
        extra=st.floats(1e5, 1e9),
    )
    def test_latency_monotone_in_traffic(self, model, misses, extra):
        assert model.effective_latency_s(misses + extra, 400e6) >= (
            model.effective_latency_s(misses, 400e6)
        )


class TestMissPenalty:
    def test_penalty_in_cycles_grows_with_core_frequency(self, model):
        """Same wall-clock latency costs more cycles at a faster core --
        the memory wall that flattens speedup."""
        slow = model.miss_penalty_cycles(1e7, 800e6, 0.9e9)
        fast = model.miss_penalty_cycles(1e7, 800e6, 2.2656e9)
        assert fast / slow == pytest.approx(2.2656 / 0.9, rel=1e-6)

    def test_penalty_drops_with_faster_bus(self, model):
        slow_bus = model.miss_penalty_cycles(1e7, 200e6, 2e9)
        fast_bus = model.miss_penalty_cycles(1e7, 800e6, 2e9)
        assert fast_bus < slow_bus

    def test_penalty_magnitude_is_dram_like(self, model):
        """An L2 miss at fmax should cost on the order of 100-300 cycles."""
        penalty = model.miss_penalty_cycles(5e6, 800e6, 2.2656e9)
        assert 80 < penalty < 400

    def test_non_positive_core_frequency_rejected(self, model):
        with pytest.raises(ValueError):
            model.miss_penalty_cycles(1e6, 800e6, 0.0)
