"""The R005 burn-down stays bit-identical.

Two accumulation sites used to iterate dict ``.values()`` and were
grandfathered in the lint baseline; they now accumulate in canonical
order.  These tests pin the rewrites:

* ``AnalyticSharedCache.miss_ratios``: the insertion-rate total sums in
  the ``active`` list's order -- exactly the order the dict was built
  in, so the result is bit-identical by construction (asserted against
  an inline old-spelling recomputation).
* ``DevicePowerModel.breakdown``: the dynamic-power loop runs in sorted
  core-id order, so the same activity set yields bit-identical power
  regardless of the caller's dict insertion order.
"""

from repro.soc.cache import AnalyticSharedCache, CacheDemand
from repro.soc.power import CoreActivity, nexus5_power_model
from repro.soc.specs import CacheGeometry, DvfsState

_GEOMETRY = CacheGeometry(size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=8)

_DEMANDS = [
    CacheDemand("browser", 4.0e7, 3 * 1024 * 1024, 0.11),
    CacheDemand("decoder", 2.5e7, 512 * 1024, 0.04),
    CacheDemand("background", 9.0e6, 6 * 1024 * 1024, 0.35),
    CacheDemand("idle", 0.0, 64 * 1024, 0.01),
]


def test_cache_insertion_total_matches_old_dict_values_spelling():
    model = AnalyticSharedCache(geometry=_GEOMETRY)
    result = model.miss_ratios(_DEMANDS)

    # Recompute one fixed-point step both ways: the dict is built by a
    # comprehension over ``active``, so ``.values()`` order (the old
    # spelling) and ``active`` order (the new one) are the same floats
    # in the same order -- bit-identical, not merely approximately so.
    active = [d for d in _DEMANDS if d.accesses_per_s > 0]
    insertion = {d.task_id: d.accesses_per_s * result[d.task_id] for d in active}
    # repro: allow[R005] -- the old spelling IS the point of comparison.
    assert sum(insertion[d.task_id] for d in active) == sum(insertion.values())

    # The inactive sharer passes through at its solo ratio.
    assert result["idle"] == 0.01


def test_power_breakdown_invariant_to_activity_insertion_order():
    model = nexus5_power_model()
    state = DvfsState(freq_hz=1.728e9, voltage_v=1.05, bus_freq_hz=800e6)
    activities = {
        0: CoreActivity(utilization=0.91, effective_capacitance_f=1.1e-9),
        1: CoreActivity(utilization=0.34, effective_capacitance_f=0.8e-9),
        2: CoreActivity(utilization=0.07, effective_capacitance_f=0.6e-9),
        3: CoreActivity(utilization=0.58, effective_capacitance_f=1.4e-9),
    }
    ascending = dict(sorted(activities.items()))
    scrambled = {k: activities[k] for k in (2, 0, 3, 1)}

    forward = model.breakdown(state, ascending, 1.2e6, 55.0)
    shuffled = model.breakdown(state, scrambled, 1.2e6, 55.0)
    assert forward.core_dynamic_w == shuffled.core_dynamic_w
    assert forward.total_w == shuffled.total_w

    # And sorted-order iteration reproduces the old insertion-order
    # loop bit-for-bit when the caller inserted ascending (the order
    # the simulation engine builds its activity dicts in).
    v_squared = state.voltage_v**2
    dynamic = 0.0
    # repro: allow[R005] -- replicating the old insertion-order loop.
    for activity in ascending.values():
        switching = (
            activity.effective_capacitance_f
            * activity.utilization
            * v_squared
            * state.freq_hz
        )
        idle = model.idle_core_w * v_squared * (1.0 - activity.utilization)
        dynamic += switching + idle
    assert forward.core_dynamic_w == dynamic
