"""Set-associative cache simulator tests."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc.cache import SetAssociativeCache
from repro.soc.specs import CacheGeometry


def _cache(size=4096, line=64, ways=4):
    return SetAssociativeCache(
        geometry=CacheGeometry(size_bytes=size, line_bytes=line, associativity=ways)
    )


class TestBasics:
    def test_first_access_misses_second_hits(self):
        cache = _cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_different_bytes_hit(self):
        cache = _cache(line=64)
        cache.access(0x100)
        assert cache.access(0x100 + 63) is True

    def test_adjacent_lines_are_distinct(self):
        cache = _cache(line=64)
        cache.access(0x100)
        assert cache.access(0x100 + 64) is False

    def test_stats_accounting(self):
        cache = _cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_ratio == pytest.approx(2 / 3)

    def test_miss_ratio_of_empty_cache_is_zero(self):
        assert _cache().stats.miss_ratio == 0.0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            _cache().access(-1)


class TestLruReplacement:
    def test_lru_victim_is_evicted(self):
        """Fill one set beyond associativity; the oldest line goes."""
        cache = _cache(size=4096, line=64, ways=4)
        sets = cache.geometry.num_sets
        addresses = [i * sets * 64 for i in range(5)]  # same set, 5 tags
        for address in addresses:
            cache.access(address)
        # Tag 0 was least recently used -> evicted.
        assert cache.access(addresses[0]) is False
        # Tag 4 is resident.
        assert cache.access(addresses[4]) is True

    def test_touching_a_line_refreshes_recency(self):
        cache = _cache(size=4096, line=64, ways=4)
        sets = cache.geometry.num_sets
        addresses = [i * sets * 64 for i in range(5)]
        for address in addresses[:4]:
            cache.access(address)
        cache.access(addresses[0])  # refresh tag 0
        cache.access(addresses[4])  # evicts tag 1, not tag 0
        assert cache.access(addresses[0]) is True
        assert cache.access(addresses[1]) is False

    def test_eviction_count(self):
        cache = _cache(size=4096, line=64, ways=4)
        sets = cache.geometry.num_sets
        for i in range(6):
            cache.access(i * sets * 64)
        assert cache.stats.evictions == 2


class TestWriteBack:
    def test_clean_eviction_is_not_a_writeback(self):
        cache = _cache(size=4096, line=64, ways=1)
        sets = cache.geometry.num_sets
        cache.access(0, write=False)
        cache.access(sets * 64, write=False)  # evicts clean line
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        cache = _cache(size=4096, line=64, ways=1)
        sets = cache.geometry.num_sets
        cache.access(0, write=True)
        cache.access(sets * 64, write=False)
        assert cache.stats.writebacks == 1

    def test_read_then_write_marks_dirty(self):
        cache = _cache(size=4096, line=64, ways=1)
        sets = cache.geometry.num_sets
        cache.access(0, write=False)
        cache.access(0, write=True)
        cache.access(sets * 64)
        assert cache.stats.writebacks == 1

    def test_flush_writes_back_dirty_lines_only(self):
        cache = _cache()
        cache.access(0, write=True)
        cache.access(64, write=False)
        assert cache.flush() == 1
        assert cache.resident_lines() == 0


class TestOwnerStats:
    def test_per_owner_accounting(self):
        cache = _cache()
        cache.access(0, owner="browser")
        cache.access(0, owner="browser")
        cache.access(1 << 20, owner="kernel")
        assert cache.owner_stats["browser"].accesses == 2
        assert cache.owner_stats["browser"].misses == 1
        assert cache.owner_stats["kernel"].misses == 1

    def test_untagged_accesses_do_not_create_owner_stats(self):
        cache = _cache()
        cache.access(0)
        assert cache.owner_stats == {}


class TestInvariants:
    @given(
        addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=400),
    )
    def test_resident_lines_never_exceed_capacity(self, addresses):
        cache = _cache(size=2048, line=64, ways=2)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= cache.geometry.num_lines

    @given(
        addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=400),
    )
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = _cache()
        for address in addresses:
            cache.access(address)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses

    @given(addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    def test_replaying_a_stream_into_a_big_enough_cache_only_misses_cold(
        self, addresses
    ):
        cache = _cache(size=1 << 20, line=64, ways=16)
        for address in addresses:
            cache.access(address)
        unique_lines = {a // 64 for a in addresses}
        assert cache.stats.misses == len(unique_lines)


class TestAgainstAnalyticModel:
    def test_capacity_pressure_inflates_misses_like_the_analytic_curve(self):
        """Two looping streams sharing a small cache: the simulator
        shows the same qualitative inflation the analytic model
        predicts (miss ratio grows when a competitor steals capacity).
        """
        rng = random.Random(7)
        geometry = CacheGeometry(size_bytes=64 * 1024, line_bytes=64, associativity=8)

        def run(with_rival: bool) -> float:
            cache = SetAssociativeCache(geometry=geometry)
            victim_lines = [rng.randrange(0, 48 * 1024, 64) for _ in range(400)]
            rival_lines = [
                (1 << 22) + rng.randrange(0, 256 * 1024, 64) for _ in range(2000)
            ]
            for round_index in range(40):
                for address in victim_lines:
                    cache.access(address, owner="victim")
                if with_rival:
                    for address in rival_lines:
                        cache.access(address, owner="rival")
            return cache.owner_stats["victim"].miss_ratio

        alone = run(with_rival=False)
        contended = run(with_rival=True)
        assert contended > alone * 1.5
