"""Ground-truth leakage physics tests (Equation 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc.leakage import LeakageParameters, nexus5_leakage_parameters


@pytest.fixture(scope="module")
def params():
    return nexus5_leakage_parameters()


class TestShape:
    def test_positive_everywhere_reasonable(self, params):
        for voltage in (0.8, 0.95, 1.15):
            for temperature in (10.0, 40.0, 80.0):
                assert params.power_w(voltage, temperature) > 0

    def test_increases_with_temperature(self, params):
        cool = params.power_w(1.0, 30.0)
        hot = params.power_w(1.0, 70.0)
        assert hot > cool

    def test_increases_with_voltage(self, params):
        low = params.power_w(0.85, 50.0)
        high = params.power_w(1.15, 50.0)
        assert high > low

    def test_superlinear_in_temperature(self, params):
        """Each +20 C step adds more leakage than the previous one."""
        p30 = params.power_w(1.1, 30.0)
        p50 = params.power_w(1.1, 50.0)
        p70 = params.power_w(1.1, 70.0)
        assert (p70 - p50) > (p50 - p30)

    def test_calibrated_magnitudes(self, params):
        """Low corner ~0.1-0.3 W, hot high corner ~0.6-1.2 W."""
        assert 0.05 < params.power_w(0.85, 40.0) < 0.35
        assert 0.5 < params.power_w(1.15, 65.0) < 1.3

    @given(
        voltage=st.floats(0.7, 1.3),
        t_low=st.floats(0.0, 50.0),
        delta=st.floats(1.0, 40.0),
    )
    def test_monotone_in_temperature_property(self, params, voltage, t_low, delta):
        assert params.power_w(voltage, t_low + delta) > params.power_w(
            voltage, t_low
        )

    @given(
        temperature=st.floats(0.0, 90.0),
        v_low=st.floats(0.7, 1.1),
        delta=st.floats(0.01, 0.3),
    )
    def test_monotone_in_voltage_property(self, params, temperature, v_low, delta):
        assert params.power_w(v_low + delta, temperature) > params.power_w(
            v_low, temperature
        )


class TestValidation:
    def test_zero_voltage_rejected(self, params):
        with pytest.raises(ValueError):
            params.power_w(0.0, 40.0)

    def test_below_absolute_zero_rejected(self, params):
        with pytest.raises(ValueError):
            params.power_w(1.0, -300.0)

    def test_as_tuple_round_trip(self, params):
        rebuilt = LeakageParameters(*params.as_tuple())
        assert rebuilt.power_w(1.0, 50.0) == params.power_w(1.0, 50.0)


class TestBoundConstants:
    def test_inlined_expression_matches_the_closure(self, params):
        """Bit-identity of the fleet engine's inlined Eq. 5 term."""
        import math

        for voltage in (0.85, 1.05, 1.225):
            closure = params.bound_evaluator(voltage)
            k1v, slope, gate = params.bound_constants(voltage)
            for temperature in (-10.0, 26.0, 48.0, 65.5, 90.0):
                kelvin = temperature + 273.15
                inline = (
                    k1v * kelvin**2 * math.exp(slope / kelvin) + gate
                )
                assert inline == closure(temperature)

    def test_zero_voltage_rejected(self, params):
        with pytest.raises(ValueError):
            params.bound_constants(0.0)
