"""Platform description tests (Table II)."""

import pytest

from repro.soc.specs import (
    CacheGeometry,
    DvfsState,
    MemorySpec,
    PlatformSpec,
)


class TestNexus5Table2:
    """The spec mirrors Table II of the paper."""

    def test_four_krait_cores(self, spec):
        assert spec.num_cores == 4

    def test_fourteen_dvfs_states(self, spec):
        assert len(spec.dvfs_table) == 14

    def test_frequency_range_300_to_2265(self, spec):
        assert spec.min_state.freq_hz == pytest.approx(300e6)
        assert spec.max_state.freq_hz == pytest.approx(2265.6e6)

    def test_l1_is_16kb(self, spec):
        assert spec.l1_geometry.size_bytes == 16 * 1024

    def test_l2_is_2mb_shared(self, spec):
        assert spec.l2_geometry.size_bytes == 2 * 1024 * 1024

    def test_memory_is_2gb(self, spec):
        assert spec.memory.size_bytes == 2 * 1024**3

    def test_voltage_rises_with_frequency(self, spec):
        voltages = [state.voltage_v for state in spec.dvfs_table]
        assert voltages == sorted(voltages)
        assert voltages[0] < voltages[-1]

    def test_bus_frequency_is_monotone_in_core_frequency(self, spec):
        buses = [state.bus_freq_hz for state in spec.dvfs_table]
        assert buses == sorted(buses)

    def test_evaluation_subset_has_eight_entries(self, spec):
        assert len(spec.evaluation_states()) == 8

    def test_evaluation_frequencies_are_table_entries(self, spec):
        table = set(spec.frequencies_hz)
        for freq in spec.evaluation_freqs_hz:
            assert freq in table


class TestStateQueries:
    def test_state_for_exact_frequency(self, spec):
        state = spec.state_for(1190.4e6)
        assert state.freq_hz == pytest.approx(1190.4e6)

    def test_state_for_unknown_frequency_raises(self, spec):
        with pytest.raises(KeyError):
            spec.state_for(1.0e9)

    def test_nearest_state_rounds_to_closest(self, spec):
        assert spec.nearest_state(1.2e9).freq_hz == pytest.approx(1190.4e6)
        assert spec.nearest_state(0.0).freq_hz == pytest.approx(300e6)

    def test_ceil_state_rounds_up(self, spec):
        assert spec.ceil_state(1.0e9).freq_hz == pytest.approx(1036.8e6)

    def test_ceil_state_saturates_at_max(self, spec):
        assert spec.ceil_state(9e9).freq_hz == spec.max_state.freq_hz

    def test_ceil_state_exact_match_returns_same(self, spec):
        assert spec.ceil_state(960e6).freq_hz == pytest.approx(960e6)

    def test_state_index_is_positional(self, spec):
        assert spec.state_index(300e6) == 0
        assert spec.state_index(2265.6e6) == 13

    def test_neighbour_states_interior(self, spec):
        below, above = spec.neighbour_states(960e6)
        assert below.freq_hz == pytest.approx(883.2e6)
        assert above.freq_hz == pytest.approx(1036.8e6)

    def test_neighbour_states_at_edges(self, spec):
        below, _ = spec.neighbour_states(300e6)
        _, above = spec.neighbour_states(2265.6e6)
        assert below is None
        assert above is None

    def test_bus_frequency_groups_partition_the_table(self, spec):
        groups = spec.bus_frequency_groups()
        total = sum(len(groups[bus]) for bus in sorted(groups))
        assert total == len(spec.dvfs_table)
        assert len(groups) == 4  # 200 / 400 / 533 / 800 MHz bands

    def test_bus_freq_for_matches_state(self, spec):
        for state in spec.dvfs_table:
            assert spec.bus_freq_for(state.freq_hz) == state.bus_freq_hz


class TestValidation:
    def _state(self, freq, bus=200e6):
        return DvfsState(freq_hz=freq, voltage_v=0.9, bus_freq_hz=bus)

    def _spec(self, table, **kwargs):
        defaults = dict(
            name="test",
            num_cores=2,
            dvfs_table=table,
            l1_geometry=CacheGeometry(16 * 1024, 64, 4),
            l2_geometry=CacheGeometry(2 * 1024 * 1024, 64, 8),
            memory=MemorySpec(2**31, 50e-9, 16.0, 8.0),
        )
        defaults.update(kwargs)
        return PlatformSpec(**defaults)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            self._spec(())

    def test_unsorted_table_rejected(self):
        with pytest.raises(ValueError):
            self._spec((self._state(2e9), self._state(1e9)))

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ValueError):
            self._spec((self._state(1e9), self._state(1e9)))

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            self._spec((self._state(1e9),), num_cores=0)

    def test_evaluation_freq_must_be_in_table(self):
        with pytest.raises(ValueError):
            self._spec((self._state(1e9),), evaluation_freqs_hz=(2e9,))


class TestCacheGeometry:
    def test_num_sets(self):
        geometry = CacheGeometry(size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=8)
        assert geometry.num_sets == 4096

    def test_num_lines(self):
        geometry = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)
        assert geometry.num_lines == 256

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=0, line_bytes=64, associativity=4)

    def test_non_multiple_size_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, line_bytes=64, associativity=4)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1024, line_bytes=64, associativity=0)


class TestMemorySpec:
    def test_latency_decreases_with_bus_frequency(self, spec):
        slow = spec.memory.access_latency_s(200e6)
        fast = spec.memory.access_latency_s(800e6)
        assert slow > fast

    def test_latency_has_fixed_floor(self, spec):
        assert spec.memory.access_latency_s(1e12) == pytest.approx(
            spec.memory.base_latency_s, rel=1e-3
        )

    def test_peak_bandwidth_scales_linearly(self, spec):
        assert spec.memory.peak_bandwidth_bytes_s(800e6) == pytest.approx(
            4 * spec.memory.peak_bandwidth_bytes_s(200e6)
        )

    def test_non_positive_bus_frequency_rejected(self, spec):
        with pytest.raises(ValueError):
            spec.memory.access_latency_s(0.0)
        with pytest.raises(ValueError):
            spec.memory.peak_bandwidth_bytes_s(-1.0)


class TestDvfsState:
    def test_unit_conversions(self):
        state = DvfsState(freq_hz=1.5e9, voltage_v=1.0, bus_freq_hz=533e6)
        assert state.freq_ghz == pytest.approx(1.5)
        assert state.freq_mhz == pytest.approx(1500.0)


class TestGenericHexcore:
    """The portability target platform."""

    @pytest.fixture(scope="class")
    def hexcore(self):
        from repro.soc.specs import generic_hexcore_spec

        return generic_hexcore_spec()

    def test_six_cores_ten_states(self, hexcore):
        assert hexcore.num_cores == 6
        assert len(hexcore.dvfs_table) == 10

    def test_three_bus_bands(self, hexcore):
        assert len(hexcore.bus_frequency_groups()) == 3

    def test_wider_ladder_than_the_nexus5(self, hexcore, spec):
        assert hexcore.max_state.freq_hz > spec.max_state.freq_hz
        assert hexcore.max_state.voltage_v > spec.max_state.voltage_v

    def test_evaluation_subset(self, hexcore):
        assert len(hexcore.evaluation_states()) == 7

    def test_structural_invariants_hold(self, hexcore):
        voltages = [s.voltage_v for s in hexcore.dvfs_table]
        buses = [s.bus_freq_hz for s in hexcore.dvfs_table]
        assert voltages == sorted(voltages)
        assert buses == sorted(buses)
