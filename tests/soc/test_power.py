"""Ground-truth device power model tests."""

import pytest

from repro.soc.power import (
    CoreActivity,
    nexus5_power_model,
)
from repro.soc.specs import nexus5_spec


@pytest.fixture(scope="module")
def model():
    return nexus5_power_model()


@pytest.fixture(scope="module")
def states():
    return nexus5_spec().dvfs_table


def _busy(capacitance=0.45e-9, utilization=1.0):
    return CoreActivity(utilization=utilization, effective_capacitance_f=capacitance)


class TestBreakdown:
    def test_total_is_sum_of_components(self, model, states):
        breakdown = model.breakdown(states[-1], {0: _busy()}, 1e6, 50.0)
        assert breakdown.total_w == pytest.approx(
            breakdown.core_dynamic_w
            + breakdown.memory_w
            + breakdown.leakage_w
            + breakdown.rest_of_device_w
        )

    def test_soc_power_excludes_rest_of_device(self, model, states):
        breakdown = model.breakdown(states[0], {0: _busy()}, 0.0, 40.0)
        assert breakdown.soc_w == pytest.approx(
            breakdown.total_w - breakdown.rest_of_device_w
        )

    def test_dynamic_power_scales_with_v_squared_f(self, model, states):
        low = model.breakdown(states[0], {0: _busy()}, 0.0, 40.0)
        high = model.breakdown(states[-1], {0: _busy()}, 0.0, 40.0)
        expected_ratio = (
            states[-1].voltage_v**2 * states[-1].freq_hz
        ) / (states[0].voltage_v**2 * states[0].freq_hz)
        # Idle-core residual is zero at u=1, so scaling is exact.
        assert high.core_dynamic_w / low.core_dynamic_w == pytest.approx(
            expected_ratio
        )

    def test_dynamic_power_scales_with_utilization(self, model, states):
        half = model.breakdown(states[-1], {0: _busy(utilization=0.5)}, 0.0, 40.0)
        full = model.breakdown(states[-1], {0: _busy(utilization=1.0)}, 0.0, 40.0)
        assert half.core_dynamic_w < full.core_dynamic_w

    def test_idle_core_still_draws_residual_power(self, model, states):
        idle = model.breakdown(
            states[-1], {0: CoreActivity(0.0, 0.0)}, 0.0, 40.0
        )
        assert idle.core_dynamic_w > 0

    def test_more_cores_draw_more_power(self, model, states):
        one = model.breakdown(states[-1], {0: _busy()}, 0.0, 40.0)
        three = model.breakdown(
            states[-1], {0: _busy(), 1: _busy(), 2: _busy()}, 0.0, 40.0
        )
        assert three.core_dynamic_w == pytest.approx(3 * one.core_dynamic_w)

    def test_memory_power_grows_with_miss_rate(self, model, states):
        quiet = model.breakdown(states[-1], {0: _busy()}, 0.0, 40.0)
        busy = model.breakdown(states[-1], {0: _busy()}, 20e6, 40.0)
        assert busy.memory_w > quiet.memory_w
        assert busy.memory_w - quiet.memory_w == pytest.approx(
            model.energy_per_miss_j * 20e6
        )

    def test_memory_static_power_grows_with_bus_frequency(self, model, states):
        low_bus = model.breakdown(states[0], {0: _busy()}, 0.0, 40.0)
        high_bus = model.breakdown(states[-1], {0: _busy()}, 0.0, 40.0)
        assert high_bus.memory_w > low_bus.memory_w

    def test_leakage_grows_with_temperature(self, model, states):
        cool = model.breakdown(states[-1], {0: _busy()}, 0.0, 30.0)
        hot = model.breakdown(states[-1], {0: _busy()}, 0.0, 70.0)
        assert hot.leakage_w > cool.leakage_w
        assert hot.core_dynamic_w == pytest.approx(cool.core_dynamic_w)

    def test_negative_miss_rate_rejected(self, model, states):
        with pytest.raises(ValueError):
            model.breakdown(states[0], {0: _busy()}, -1.0, 40.0)

    def test_whole_device_magnitude_is_phone_like(self, model, states):
        """Three busy cores at fmax: a hot phone, not a laptop."""
        breakdown = model.breakdown(
            states[-1], {0: _busy(), 1: _busy(), 2: _busy()}, 15e6, 55.0
        )
        assert 3.5 < breakdown.total_w < 8.0


class TestCoreActivity:
    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            CoreActivity(utilization=1.5, effective_capacitance_f=1e-9)
        with pytest.raises(ValueError):
            CoreActivity(utilization=-0.1, effective_capacitance_f=1e-9)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            CoreActivity(utilization=0.5, effective_capacitance_f=-1e-9)


class TestInteriorOptimum:
    def test_energy_per_fixed_work_has_interior_minimum(self, model, states):
        """The floor + V^2 f balance creates an interior energy optimum.

        For a fixed amount of compute-bound work (cycles), energy
        = total power x (cycles / f); the minimizing frequency must be
        neither the lowest nor the highest state.
        """
        cycles = 3e9
        energies = []
        for state in states:
            breakdown = model.breakdown(state, {0: _busy(), 1: _busy()}, 2e6, 48.0)
            energies.append(breakdown.total_w * cycles / state.freq_hz)
        best = energies.index(min(energies))
        assert 0 < best < len(states) - 1
