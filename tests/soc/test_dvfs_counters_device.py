"""DVFS actuator, counter bank, and device facade tests."""

import pytest

from repro.soc.counters import CounterBank, CoreCounters, CounterSample
from repro.soc.device import Device, DeviceConfig
from repro.soc.dvfs import DvfsActuator, SwitchCost
from repro.soc.specs import nexus5_spec
from repro.soc.thermal import low_ambient


class TestDvfsActuator:
    @pytest.fixture()
    def actuator(self, spec):
        return DvfsActuator(spec=spec, cost=SwitchCost(stall_s=1e-4, energy_j=2e-4))

    def test_starts_at_max_state(self, actuator, spec):
        assert actuator.state == spec.max_state

    def test_switch_changes_state_and_charges_cost(self, actuator):
        stall = actuator.set_frequency(960e6)
        assert actuator.state.freq_hz == pytest.approx(960e6)
        assert stall == pytest.approx(1e-4)
        assert actuator.switch_count == 1
        assert actuator.total_switch_energy_j == pytest.approx(2e-4)

    def test_no_op_switch_is_free(self, actuator):
        actuator.set_frequency(960e6)
        stall = actuator.set_frequency(960e6)
        assert stall == 0.0
        assert actuator.switch_count == 1

    def test_unknown_frequency_rejected(self, actuator):
        with pytest.raises(KeyError):
            actuator.set_frequency(1.0e9)

    def test_reset_clears_accounting(self, actuator, spec):
        actuator.set_frequency(960e6)
        actuator.reset()
        assert actuator.state == spec.max_state
        assert actuator.switch_count == 0
        assert actuator.total_stall_s == 0.0

    def test_reset_to_specific_state(self, actuator, spec):
        actuator.reset(spec.min_state)
        assert actuator.state == spec.min_state


class TestCounterBank:
    def test_accumulate_and_drain(self):
        bank = CounterBank()
        bank.add(core=0, busy_s=0.01, instructions=1e7, l2_accesses=1e5, l2_misses=2e4)
        bank.add(core=0, busy_s=0.01, instructions=1e7, l2_accesses=1e5, l2_misses=2e4)
        bank.advance(0.02)
        sample = bank.drain(freq_hz=1e9, soc_temperature_c=50.0,
                            core_temperatures_c={0: 52.0})
        assert sample.window_s == pytest.approx(0.02)
        assert sample.per_core[0].instructions == pytest.approx(2e7)
        assert sample.utilization(0) == pytest.approx(1.0)
        assert sample.mpki(0) == pytest.approx(2.0)

    def test_drain_resets_the_window(self):
        bank = CounterBank()
        bank.add(0, 0.01, 1e6, 1e4, 1e3)
        bank.advance(0.01)
        bank.drain(1e9, 50.0, {})
        empty = bank.drain(1e9, 50.0, {})
        assert empty.window_s == 0.0
        assert empty.per_core == {}

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            CounterBank().advance(-0.01)


class TestCounterSample:
    def _sample(self):
        return CounterSample(
            window_s=0.1,
            per_core={
                0: CoreCounters(busy_s=0.1, instructions=2e8, l2_accesses=4e6, l2_misses=1e6),
                2: CoreCounters(busy_s=0.05, instructions=5e7, l2_accesses=4e6, l2_misses=6e5),
            },
            freq_hz=1.5e9,
            soc_temperature_c=55.0,
            core_temperatures_c={0: 57.0, 2: 56.0},
        )

    def test_utilization_per_core(self):
        sample = self._sample()
        assert sample.utilization(0) == pytest.approx(1.0)
        assert sample.utilization(2) == pytest.approx(0.5)
        assert sample.utilization(3) == 0.0

    def test_max_utilization(self):
        assert self._sample().max_utilization() == pytest.approx(1.0)

    def test_mpki_aggregation_over_cores(self):
        sample = self._sample()
        expected = (1e6 + 6e5) / ((2e8 + 5e7) / 1000.0)
        assert sample.mpki_of_cores([0, 2]) == pytest.approx(expected)

    def test_mpki_of_idle_cores_is_zero(self):
        assert self._sample().mpki_of_cores([3]) == 0.0

    def test_utilization_of_cores_is_mean(self):
        assert self._sample().utilization_of_cores([0, 2]) == pytest.approx(0.75)

    def test_utilization_of_no_cores_is_zero(self):
        assert self._sample().utilization_of_cores([]) == 0.0

    def test_empty_sample(self):
        sample = CounterSample(0.0, {}, 1e9, 40.0, {})
        assert sample.max_utilization() == 0.0
        assert sample.mpki(0) == 0.0


class TestCoreCounters:
    def test_merge_adds_fields(self):
        merged = CoreCounters(1.0, 2.0, 3.0, 4.0).merged(CoreCounters(1.0, 2.0, 3.0, 4.0))
        assert merged.busy_s == 2.0
        assert merged.l2_misses == 8.0

    def test_mpki_with_no_instructions_is_zero(self):
        assert CoreCounters().mpki() == 0.0


class TestDeviceFacade:
    def test_default_device_wires_the_nexus5(self):
        device = Device()
        assert device.spec.name == nexus5_spec().name
        assert device.state == device.spec.max_state

    def test_reset_restores_thermal_and_actuator(self):
        device = Device()
        device.actuator.set_frequency(960e6)
        device.thermal.step(5.0, 10.0)
        device.reset()
        assert device.state == device.spec.max_state
        assert device.thermal.soc_temperature_c == pytest.approx(
            device.config.ambient.initial_junction_c
        )

    def test_reset_to_alternate_ambient(self):
        device = Device()
        device.reset(low_ambient())
        assert device.thermal.ambient_c == low_ambient().ambient_c

    def test_custom_config_is_respected(self):
        config = DeviceConfig(cache_theta=0.9)
        device = Device(config)
        assert device.cache.theta == pytest.approx(0.9)
