"""Lumped-RC thermal model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc.thermal import (
    AmbientScenario,
    ThermalModel,
    low_ambient,
    room_temperature,
    warm_device,
)


class TestSteadyState:
    def test_steady_state_is_ambient_plus_power_times_resistance(self):
        model = ThermalModel(r_th_c_per_w=9.0, ambient_c=25.0)
        assert model.steady_state_c(4.0) == pytest.approx(25.0 + 36.0)

    def test_zero_power_steady_state_is_ambient(self):
        model = ThermalModel(ambient_c=20.0)
        assert model.steady_state_c(0.0) == pytest.approx(20.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().steady_state_c(-1.0)

    def test_long_run_converges_to_steady_state(self):
        model = ThermalModel(soc_temperature_c=30.0, ambient_c=25.0)
        for _ in range(10000):
            model.step(3.0, 0.01)
        assert model.soc_temperature_c == pytest.approx(
            model.steady_state_c(3.0), abs=0.01
        )


class TestStepIntegration:
    def test_heating_moves_toward_target_without_overshoot(self):
        model = ThermalModel(soc_temperature_c=40.0, ambient_c=25.0)
        target = model.steady_state_c(5.0)
        previous = model.soc_temperature_c
        for _ in range(50):
            current = model.step(5.0, 0.1)
            assert previous <= current <= target + 1e-9
            previous = current

    def test_cooling_when_power_drops(self):
        model = ThermalModel(soc_temperature_c=70.0, ambient_c=25.0)
        after = model.step(0.5, 1.0)
        assert after < 70.0

    def test_exact_integration_is_step_size_invariant(self):
        """One 1 s step equals ten 0.1 s steps (exact exponential)."""
        coarse = ThermalModel(soc_temperature_c=40.0)
        fine = ThermalModel(soc_temperature_c=40.0)
        coarse.step(4.0, 1.0)
        for _ in range(10):
            fine.step(4.0, 0.1)
        assert coarse.soc_temperature_c == pytest.approx(
            fine.soc_temperature_c, abs=1e-9
        )

    def test_zero_dt_is_identity(self):
        model = ThermalModel(soc_temperature_c=44.0)
        assert model.step(5.0, 0.0) == pytest.approx(44.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().step(1.0, -0.1)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().step(-1.0, 0.1)

    @given(
        power=st.floats(0.0, 8.0),
        start=st.floats(10.0, 90.0),
        dt=st.floats(0.001, 5.0),
    )
    def test_temperature_stays_between_start_and_target(self, power, start, dt):
        model = ThermalModel(soc_temperature_c=start, ambient_c=25.0)
        target = model.steady_state_c(power)
        result = model.step(power, dt)
        low, high = sorted((start, target))
        assert low - 1e-9 <= result <= high + 1e-9


class TestCoreSensors:
    def test_core_sensor_adds_local_hotspot(self):
        model = ThermalModel(soc_temperature_c=50.0, core_r_th_c_per_w=2.0)
        model.step(3.0, 0.1, per_core_power_w={0: 1.5, 1: 0.0})
        assert model.core_temperature_c(0) > model.core_temperature_c(1)
        assert model.core_temperature_c(1) == pytest.approx(
            model.soc_temperature_c
        )

    def test_unknown_core_reads_package_temperature(self):
        model = ThermalModel(soc_temperature_c=55.0)
        assert model.core_temperature_c(7) == pytest.approx(55.0)


class TestScenarios:
    def test_room_temperature_scenario(self):
        scenario = room_temperature()
        assert scenario.ambient_c == pytest.approx(25.0)
        assert scenario.initial_junction_c > scenario.ambient_c

    def test_low_ambient_is_cooler_than_room(self):
        assert low_ambient().ambient_c < room_temperature().ambient_c
        assert low_ambient().initial_junction_c < room_temperature().initial_junction_c

    def test_warm_device_matches_paper_observation(self):
        """The paper observes 58-65 C junctions while browsing."""
        assert 55.0 <= warm_device().initial_junction_c <= 65.0

    def test_for_scenario_initialises_state(self):
        model = ThermalModel.for_scenario(low_ambient())
        assert model.ambient_c == low_ambient().ambient_c
        assert model.soc_temperature_c == low_ambient().initial_junction_c

    def test_reset_restores_scenario(self):
        model = ThermalModel.for_scenario(room_temperature())
        model.step(6.0, 10.0, per_core_power_w={0: 2.0})
        model.reset(room_temperature())
        assert model.soc_temperature_c == room_temperature().initial_junction_c
        assert model.core_temperature_c(0) == pytest.approx(
            model.soc_temperature_c
        )

    def test_custom_scenario(self):
        scenario = AmbientScenario(name="sauna", ambient_c=40.0, initial_junction_c=60.0)
        model = ThermalModel.for_scenario(scenario)
        assert model.steady_state_c(0.0) == pytest.approx(40.0)
