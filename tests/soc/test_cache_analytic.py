"""Analytic shared-cache model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc.cache import AnalyticSharedCache, CacheDemand
from repro.soc.specs import CacheGeometry

MIB = 1024 * 1024


@pytest.fixture()
def cache():
    return AnalyticSharedCache(
        geometry=CacheGeometry(size_bytes=2 * MIB, line_bytes=64, associativity=8)
    )


def _demand(task_id, accesses=1e7, working_set=1.0 * MIB, solo=0.1):
    return CacheDemand(
        task_id=task_id,
        accesses_per_s=accesses,
        working_set_bytes=working_set,
        solo_miss_ratio=solo,
    )


class TestSoloBehaviour:
    def test_fitting_task_alone_runs_at_solo_ratio(self, cache):
        ratios = cache.miss_ratios([_demand("a", working_set=1.0 * MIB)])
        assert ratios["a"] == pytest.approx(0.1)

    def test_streaming_task_alone_still_runs_at_solo_ratio(self, cache):
        """Solo miss ratio is defined at full capacity; a working set
        beyond the cache must not self-inflate."""
        ratios = cache.miss_ratios([_demand("a", working_set=24 * MIB)])
        assert ratios["a"] == pytest.approx(0.1)

    def test_idle_task_keeps_solo_ratio(self, cache):
        ratios = cache.miss_ratios([_demand("a", accesses=0.0)])
        assert ratios["a"] == pytest.approx(0.1)

    def test_empty_demand_list(self, cache):
        assert cache.miss_ratios([]) == {}


class TestSharing:
    def test_contention_inflates_both_sharers(self, cache):
        ratios = cache.miss_ratios(
            [
                _demand("a", working_set=1.5 * MIB),
                _demand("b", working_set=1.5 * MIB),
            ]
        )
        assert ratios["a"] > 0.1
        assert ratios["b"] > 0.1

    def test_more_aggressive_competitor_hurts_more(self, cache):
        mild = cache.miss_ratios(
            [
                _demand("victim", working_set=1.5 * MIB),
                _demand("rival", accesses=2e6, working_set=8 * MIB, solo=0.1),
            ]
        )["victim"]
        fierce = cache.miss_ratios(
            [
                _demand("victim", working_set=1.5 * MIB),
                _demand("rival", accesses=8e7, working_set=8 * MIB, solo=0.15),
            ]
        )["victim"]
        assert fierce > mild

    def test_small_working_set_is_immune(self, cache):
        """A task whose working set fits its share keeps its solo ratio."""
        ratios = cache.miss_ratios(
            [
                _demand("tiny", accesses=5e7, working_set=0.05 * MIB),
                _demand("rival", accesses=5e7, working_set=8 * MIB, solo=0.15),
            ]
        )
        assert ratios["tiny"] == pytest.approx(0.1, rel=0.05)

    def test_ratio_never_exceeds_one(self, cache):
        ratios = cache.miss_ratios(
            [
                _demand("a", accesses=1e9, working_set=64 * MIB, solo=0.9),
                _demand("b", accesses=1e9, working_set=64 * MIB, solo=0.9),
            ]
        )
        assert ratios["a"] <= 1.0
        assert ratios["b"] <= 1.0

    def test_symmetric_sharers_get_symmetric_ratios(self, cache):
        ratios = cache.miss_ratios(
            [_demand("a", working_set=3 * MIB), _demand("b", working_set=3 * MIB)]
        )
        assert ratios["a"] == pytest.approx(ratios["b"])

    def test_sharper_theta_inflates_more(self):
        geometry = CacheGeometry(2 * MIB, 64, 8)
        demands = [
            _demand("a", working_set=2 * MIB),
            _demand("b", accesses=5e7, working_set=8 * MIB, solo=0.15),
        ]
        gentle = AnalyticSharedCache(geometry, theta=0.3).miss_ratios(demands)["a"]
        sharp = AnalyticSharedCache(geometry, theta=0.9).miss_ratios(demands)["a"]
        assert sharp > gentle

    @given(
        accesses=st.floats(1e5, 1e9),
        working_set=st.floats(0.1 * MIB, 32 * MIB),
        solo=st.floats(0.01, 0.5),
        rival_accesses=st.floats(1e5, 1e9),
    )
    def test_ratio_bounded_between_solo_and_one(
        self, cache, accesses, working_set, solo, rival_accesses
    ):
        ratios = cache.miss_ratios(
            [
                CacheDemand("victim", accesses, working_set, solo),
                CacheDemand("rival", rival_accesses, 16 * MIB, 0.2),
            ]
        )
        assert solo - 1e-9 <= ratios["victim"] <= 1.0


class TestValidation:
    def test_negative_access_rate_rejected(self):
        with pytest.raises(ValueError):
            CacheDemand("a", -1.0, MIB, 0.1)

    def test_negative_working_set_rejected(self):
        with pytest.raises(ValueError):
            CacheDemand("a", 1.0, -1.0, 0.1)

    def test_out_of_range_miss_ratio_rejected(self):
        with pytest.raises(ValueError):
            CacheDemand("a", 1.0, MIB, 1.5)
