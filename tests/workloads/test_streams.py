"""Address-stream generator tests and analytic-model cross-validation."""

import pytest
from hypothesis import strategies as st

from repro.soc.cache import AnalyticSharedCache, CacheDemand
from repro.soc.specs import CacheGeometry
from repro.workloads.streams import (
    LINE_BYTES,
    PointerChaseStream,
    RandomStream,
    SequentialStream,
    StridedStream,
    measure_miss_ratio,
    measure_shared_miss_ratios,
)

KIB = 1024


def _geometry(size_kib=64, ways=8):
    return CacheGeometry(size_bytes=size_kib * KIB, line_bytes=64, associativity=ways)


class TestStreamShapes:
    def test_sequential_touches_every_line_in_order(self):
        stream = SequentialStream(working_set_bytes=4 * LINE_BYTES, base=1 << 20)
        assert stream.take(5) == [
            (1 << 20) + 0,
            (1 << 20) + 64,
            (1 << 20) + 128,
            (1 << 20) + 192,
            (1 << 20) + 0,
        ]

    def test_strided_visits_all_phases(self):
        stream = StridedStream(
            working_set_bytes=8 * LINE_BYTES, stride_bytes=2 * LINE_BYTES
        )
        one_cycle = stream.take(8)
        assert sorted(one_cycle) == [i * LINE_BYTES for i in range(8)]

    def test_random_stays_in_working_set(self):
        stream = RandomStream(working_set_bytes=16 * LINE_BYTES, seed=3, base=4096)
        for address in stream.take(200):
            assert 4096 <= address < 4096 + 16 * LINE_BYTES
            assert address % LINE_BYTES == 0

    def test_random_is_seed_deterministic(self):
        a = RandomStream(working_set_bytes=KIB, seed=9).take(50)
        b = RandomStream(working_set_bytes=KIB, seed=9).take(50)
        assert a == b

    def test_pointer_chase_is_a_permutation(self):
        stream = PointerChaseStream(working_set_bytes=32 * LINE_BYTES, seed=1)
        cycle = stream.take(32)
        assert sorted(cycle) == [i * LINE_BYTES for i in range(32)]
        assert cycle != sorted(cycle)  # shuffled

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialStream(working_set_bytes=10)
        with pytest.raises(ValueError):
            StridedStream(working_set_bytes=KIB, stride_bytes=0)
        with pytest.raises(ValueError):
            RandomStream(working_set_bytes=0)


class TestSoloMissRatios:
    def test_fitting_sequential_stream_has_near_zero_misses(self):
        ratio = measure_miss_ratio(
            SequentialStream(working_set_bytes=16 * KIB), _geometry(64), 4000
        )
        assert ratio < 0.01

    def test_oversized_sequential_stream_misses_every_line(self):
        """A streaming sweep over 4x the cache: LRU evicts lines before
        reuse, so every access to a new line misses."""
        ratio = measure_miss_ratio(
            SequentialStream(working_set_bytes=256 * KIB), _geometry(64), 4000
        )
        assert ratio > 0.95

    def test_fitting_pointer_chase_hits_after_warmup(self):
        ratio = measure_miss_ratio(
            PointerChaseStream(working_set_bytes=32 * KIB, seed=2),
            _geometry(64),
            4000,
        )
        assert ratio < 0.02

    def test_random_stream_miss_ratio_tracks_capacity_shortfall(self):
        small = measure_miss_ratio(
            RandomStream(working_set_bytes=32 * KIB, seed=5), _geometry(64), 6000
        )
        large = measure_miss_ratio(
            RandomStream(working_set_bytes=256 * KIB, seed=5), _geometry(64), 6000
        )
        assert small < 0.05
        # ~3/4 of a uniformly-referenced 256K set cannot reside in 64K.
        assert 0.55 < large < 0.95

    def test_measurement_window_must_be_positive(self):
        with pytest.raises(ValueError):
            measure_miss_ratio(
                SequentialStream(working_set_bytes=KIB), _geometry(), 0
            )


class TestSharedCacheCrossValidation:
    """The analytic sharing model against the true simulator."""

    def test_contention_direction_matches_the_analytic_model(self):
        geometry = _geometry(64)
        victim = RandomStream(working_set_bytes=48 * KIB, seed=1, base=0)
        rival = SequentialStream(
            working_set_bytes=256 * KIB, base=1 << 24
        )
        solo = measure_miss_ratio(victim, geometry, 6000)
        shared = measure_shared_miss_ratios(
            {"victim": (victim, 600), "rival": (rival, 1800)},
            geometry,
            rounds=20,
        )
        assert shared["victim"] > solo * 1.3

    def test_analytic_model_predicts_the_same_ordering(self):
        """Simulator and analytic model must agree on who suffers and
        which rival hurts more."""
        geometry = _geometry(64)
        analytic = AnalyticSharedCache(geometry=geometry)
        victim = RandomStream(working_set_bytes=48 * KIB, seed=1, base=0)
        solo = measure_miss_ratio(victim, geometry, 6000)

        simulated = {}
        predicted = {}
        for label, rival_rate in (("mild", 300), ("fierce", 3000)):
            rival = SequentialStream(working_set_bytes=256 * KIB, base=1 << 24)
            shared = measure_shared_miss_ratios(
                {"victim": (victim, 600), "rival": (rival, rival_rate)},
                geometry,
                rounds=15,
            )
            simulated[label] = shared["victim"]
            demands = [
                CacheDemand("victim", 600.0, 48 * KIB, solo),
                CacheDemand("rival", float(rival_rate), 256 * KIB, 1.0),
            ]
            predicted[label] = analytic.miss_ratios(demands)["victim"]

        assert simulated["fierce"] > simulated["mild"]
        assert predicted["fierce"] > predicted["mild"]
        # Both agree the fierce rival at least doubles the victim's
        # solo miss ratio.
        assert simulated["fierce"] > 2 * solo
        assert predicted["fierce"] > 2 * solo

    def test_tiny_working_set_is_immune_in_both_models(self):
        geometry = _geometry(64)
        victim = RandomStream(working_set_bytes=2 * KIB, seed=4, base=0)
        rival = SequentialStream(working_set_bytes=256 * KIB, base=1 << 24)
        solo = measure_miss_ratio(victim, geometry, 4000)
        shared = measure_shared_miss_ratios(
            {"victim": (victim, 400), "rival": (rival, 2000)},
            geometry,
            rounds=15,
        )
        assert shared["victim"] < solo + 0.05
