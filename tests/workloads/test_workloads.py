"""Co-run kernel, classification, and generator tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.classification import (
    HIGH_MPKI_LIMIT,
    LOW_MPKI_LIMIT,
    MemoryIntensity,
    classify_mpki,
    classify_page_load_time,
)
from repro.workloads.generator import intensity_for, synthetic_kernel, synthetic_task
from repro.workloads.kernels import (
    all_kernels,
    kernel_by_name,
    kernel_task,
    kernels_by_intensity,
)


class TestClassification:
    def test_bin_edges(self):
        assert classify_mpki(0.0) is MemoryIntensity.LOW
        assert classify_mpki(0.99) is MemoryIntensity.LOW
        assert classify_mpki(1.0) is MemoryIntensity.MEDIUM
        assert classify_mpki(7.0) is MemoryIntensity.MEDIUM
        assert classify_mpki(7.01) is MemoryIntensity.HIGH

    def test_negative_mpki_rejected(self):
        with pytest.raises(ValueError):
            classify_mpki(-0.1)

    def test_page_split_at_two_seconds(self):
        assert classify_page_load_time(1.99) == "low"
        assert classify_page_load_time(2.0) == "high"

    def test_negative_load_time_rejected(self):
        with pytest.raises(ValueError):
            classify_page_load_time(-1.0)

    @given(st.floats(0.0, 100.0))
    def test_every_mpki_lands_in_exactly_one_bin(self, mpki):
        intensity = classify_mpki(mpki)
        if mpki < LOW_MPKI_LIMIT:
            assert intensity is MemoryIntensity.LOW
        elif mpki <= HIGH_MPKI_LIMIT:
            assert intensity is MemoryIntensity.MEDIUM
        else:
            assert intensity is MemoryIntensity.HIGH


class TestKernels:
    def test_nine_kernels_as_in_table_three(self):
        assert len(all_kernels()) == 9

    def test_table_three_bin_populations(self):
        assert len(kernels_by_intensity(MemoryIntensity.LOW)) == 4
        assert len(kernels_by_intensity(MemoryIntensity.MEDIUM)) == 3
        assert len(kernels_by_intensity(MemoryIntensity.HIGH)) == 2

    def test_nominal_solo_mpki_matches_expected_bin(self):
        for kernel in all_kernels():
            assert classify_mpki(kernel.solo_mpki) is kernel.expected_intensity

    def test_lookup_by_name(self):
        assert kernel_by_name("bfs").name == "bfs"
        with pytest.raises(KeyError):
            kernel_by_name("linpack")

    def test_kernel_task_loops_and_never_gates(self):
        task = kernel_task(kernel_by_name("srad"))
        assert task.looping is True
        assert task.gating is False
        assert task.core == 2

    def test_kernel_task_has_sweep_and_reduce_phases(self):
        task = kernel_task(kernel_by_name("backprop"))
        assert len(task.phases) == 2
        sweep, reduce_phase = task.phases
        assert sweep.l2_apki > reduce_phase.l2_apki

    def test_custom_core_assignment(self):
        assert kernel_task(kernel_by_name("bfs"), core=3).core == 3


class TestSyntheticGenerator:
    def test_intensity_bounds_enforced(self):
        with pytest.raises(ValueError):
            synthetic_kernel(-0.1)
        with pytest.raises(ValueError):
            synthetic_kernel(1.1)

    def test_extremes_span_the_table_three_bins(self):
        assert synthetic_kernel(0.0).expected_intensity is MemoryIntensity.LOW
        assert synthetic_kernel(1.0).expected_intensity is MemoryIntensity.HIGH

    @given(
        low=st.floats(0.0, 1.0),
        delta=st.floats(0.01, 1.0),
    )
    def test_nominal_mpki_monotone_in_intensity(self, low, delta):
        high = min(1.0, low + delta)
        assert synthetic_kernel(high).solo_mpki >= synthetic_kernel(low).solo_mpki

    def test_representative_intensities_hit_their_bins(self):
        for target in MemoryIntensity:
            kernel = synthetic_kernel(intensity_for(target))
            assert classify_mpki(kernel.solo_mpki) is target

    def test_synthetic_task_is_a_looping_corunner(self):
        task = synthetic_task(0.5)
        assert task.looping is True
        assert task.core == 2

    def test_custom_name(self):
        assert synthetic_kernel(0.5, name="probe").name == "probe"
