"""Suppression/baseline round trips and the repo-level gate.

The last two tests are the repo's own acceptance gate: ``repro lint``
must pass at HEAD, and the shipped baseline must stay minimal (every
entry still matches a live, deliberate violation).
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import Baseline, default_baseline_path, run_lint
from repro.analysis.baseline import BASELINE_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


def _copy_fixture(tmp_path: Path, name: str) -> Path:
    root = tmp_path / name
    shutil.copytree(FIXTURES / name, root)
    return root


# ----------------------------------------------------------------------
# Suppression round trip
# ----------------------------------------------------------------------
def test_inline_suppression_silences_finding(tmp_path):
    root = _copy_fixture(tmp_path, "r005")
    target = root / "stats.py"
    source = target.read_text().replace(
        "return sum({round(s, 6) for s in samples})",
        "return sum({round(s, 6) for s in samples})  # repro: allow[R005]",
    )
    target.write_text(source)
    report = run_lint(package_root=root)
    assert report.ok
    assert [f.rule_id for f in report.suppressed] == ["R005"]


def test_suppression_for_wrong_rule_does_not_silence(tmp_path):
    root = _copy_fixture(tmp_path, "r005")
    target = root / "stats.py"
    target.write_text(
        target.read_text().replace(
            "return sum({round(s, 6) for s in samples})",
            "return sum({round(s, 6) for s in samples})  # repro: allow[R001]",
        )
    )
    report = run_lint(package_root=root)
    assert not report.ok
    assert report.suppressed == []


# ----------------------------------------------------------------------
# Baseline round trip
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    root = _copy_fixture(tmp_path, "r001")
    first = run_lint(package_root=root)
    assert len(first.new_findings) == 1

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.new_findings).save(baseline_path)
    reloaded = Baseline.load(baseline_path)

    second = run_lint(package_root=root, baseline=reloaded)
    assert second.ok
    assert len(second.baselined) == 1
    assert second.stale_baseline == []

    # A *second* identical violation is new: the count budget is spent.
    extra = root / "workloads" / "noisier.py"
    extra.write_text((root / "workloads" / "noisy.py").read_text())
    third = run_lint(package_root=root, baseline=reloaded)
    assert len(third.baselined) == 1
    assert len(third.new_findings) == 1


def test_fixed_violation_reports_stale_entry(tmp_path):
    root = _copy_fixture(tmp_path, "r001")
    report = run_lint(package_root=root)
    baseline = Baseline.from_findings(report.new_findings)

    (root / "workloads" / "noisy.py").write_text(
        '"""Fixed."""\n\n\ndef jitter(n: int):\n    return [0.0] * n\n'
    )
    after = run_lint(package_root=root, baseline=baseline)
    assert after.ok  # nothing new...
    assert len(after.stale_baseline) == 1  # ...but the entry must go


def test_baseline_survives_line_shifts(tmp_path):
    """Keys are snippet-based, so edits above the violation don't break."""
    root = _copy_fixture(tmp_path, "r001")
    baseline = Baseline.from_findings(run_lint(package_root=root).new_findings)

    target = root / "workloads" / "noisy.py"
    target.write_text("# a new header comment\n# another\n" + target.read_text())
    report = run_lint(package_root=root, baseline=baseline)
    assert report.ok
    assert report.stale_baseline == []


def test_baseline_rejects_bad_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": BASELINE_VERSION + 1, "entries": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_baseline_rejects_malformed_entry(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps({"version": BASELINE_VERSION, "entries": [{"rule": "R001"}]})
    )
    with pytest.raises(ValueError, match="malformed"):
        Baseline.load(path)


# ----------------------------------------------------------------------
# The repo-level gate
# ----------------------------------------------------------------------
def test_repo_lints_clean_at_head():
    """``repro lint`` passes on the shipped tree with the shipped baseline."""
    report = run_lint(baseline=Baseline.load(default_baseline_path()))
    assert report.ok, report.render()


def test_shipped_baseline_is_minimal():
    """Every baseline entry still matches a live violation (no stale)."""
    report = run_lint(baseline=Baseline.load(default_baseline_path()))
    assert report.stale_baseline == [], report.render()
    # And every baseline count is genuinely exercised (guards against
    # entries silently drifting to no-ops while violations get
    # suppressed some other way).  The shipped baseline is empty after
    # the R005 burn-down, so both sides are zero at head.
    entries = Baseline.load(default_baseline_path()).entries
    assert len(report.baselined) == sum(
        entries[key] for key in sorted(entries)
    )
