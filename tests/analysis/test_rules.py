"""Each rule fires on its fixture -- and only on its fixture.

The fixture trees under ``fixtures/`` act as miniature package roots
(rule path scoping is relative to the scanned root), each containing
exactly one violation of exactly one rule.
"""

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, RULES_BY_ID, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

EXPECTED = {
    "R001": ("r001", "workloads/noisy.py"),
    "R002": ("r002", "sim/clocked.py"),
    "R003": ("r003", "kernel.py"),
    "R004": ("r004", "serve/knobs.py"),
    "R005": ("r005", "stats.py"),
    "R006": ("r006", "core/mutator.py"),
    "R101": ("r101", "serve/state.py"),
    "R102": ("r102", "learn/registry.py"),
    "R103": ("r103", "serve/proto.py"),
    "R104": ("r104", "serve/dispatchers.py"),
    "R105": ("r105", "runtime/queueing.py"),
}


def test_every_shipped_rule_has_a_fixture():
    assert set(EXPECTED) == set(RULES_BY_ID)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_fixture_trips_exactly_its_rule(rule_id):
    fixture_dir, expected_path = EXPECTED[rule_id]
    report = run_lint(package_root=FIXTURES / fixture_dir)
    assert len(report.new_findings) == 1, report.render()
    finding = report.new_findings[0]
    assert finding.rule_id == rule_id
    assert finding.path == expected_path
    assert finding.line > 0
    assert finding.snippet  # baseline key must be non-empty
    assert not report.baselined and not report.suppressed


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_fixtures_do_not_cross_fire(rule_id):
    """Running every *other* rule over a fixture finds nothing."""
    fixture_dir, _ = EXPECTED[rule_id]
    others = [rule for rule in ALL_RULES if rule.rule_id != rule_id]
    report = run_lint(package_root=FIXTURES / fixture_dir, rules=others)
    assert report.new_findings == [], report.render()


def test_clean_fixture_only_suppressions():
    report = run_lint(package_root=FIXTURES / "clean")
    assert report.ok, report.render()
    assert report.new_findings == []
    # One standalone-comment suppression, one trailing wildcard.
    assert len(report.suppressed) == 2
    assert {f.rule_id for f in report.suppressed} == {"R001"}


def test_rule_metadata_complete():
    for rule in ALL_RULES:
        assert rule.rule_id.startswith("R")
        assert rule.title
        assert rule.rationale
