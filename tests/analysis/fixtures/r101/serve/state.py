"""Fixture: violates exactly R101 (module-level lock in worker code).

``shared_lock`` is the positive case; ``PerProcess`` shows the
sanctioned shape (construct the resource inside ``__init__`` so each
forked worker owns its own).
"""

import threading

SHARED_LOCK = threading.Lock()


class PerProcess:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def guard(self) -> bool:
        return self._lock.acquire(blocking=False)
