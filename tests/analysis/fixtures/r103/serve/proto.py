"""Fixture: violates exactly R103 (dispatch missing an enumerated verb).

``worker_loop`` handles only two of the three ``JOB_VERBS``;
``collect_loop`` is the negative case covering the full set.
"""

JOB_VERBS = frozenset({"run", "stop", "ping"})


def worker_loop(verb: str) -> str:
    if verb == "run":
        return "ran"
    if verb == "stop":
        return "stopped"
    raise ValueError(verb)


def collect_loop(verb: str) -> str:
    if verb == "run":
        return "ran"
    if verb == "stop":
        return "stopped"
    if verb == "ping":
        return "pong"
    raise ValueError(verb)
