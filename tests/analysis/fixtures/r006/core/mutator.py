"""Fixture: violates exactly R006 (rebinds a fingerprinted constant)."""

from repro.soc.leakage import KELVIN_OFFSET


def recalibrate() -> float:
    global KELVIN_OFFSET
    KELVIN_OFFSET = 273.0
    return KELVIN_OFFSET
