"""Fixture: violates exactly R102 (non-atomic registry publish).

``publish_racy`` writes the final path directly; ``publish_atomic``
shows the sanctioned tmp-sibling + ``os.replace`` shape, and
``append_event`` the sanctioned append-only stream.
"""

import os


def publish_racy(path: str, payload: str) -> None:
    with open(path, "w") as handle:
        handle.write(payload)


def publish_atomic(path: str, payload: str) -> None:
    tmp_path = f"{path}.{os.getpid()}.tmp"
    with open(tmp_path, "w") as handle:
        handle.write(payload)
    os.replace(tmp_path, path)


def append_event(path: str, line: str) -> None:
    with open(path, "a") as handle:
        handle.write(line + "\n")
