"""Fixture: clean module plus one suppressed violation of each style."""

import numpy as np

# repro: allow[R001] -- standalone comment covers the next line.
_ENTROPY = np.random.default_rng()

_JITTER = np.random.rand(4)  # repro: allow[*] -- trailing wildcard.


def mean_of(values: dict) -> float:
    ordered = [values[key] for key in sorted(values)]
    return sum(ordered) / len(ordered)
