"""Fixture: violates exactly R001 (global NumPy RNG draw)."""

import numpy as np


def jitter(n: int):
    return np.random.rand(n)
