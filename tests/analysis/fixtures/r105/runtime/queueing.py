"""Fixture: violates exactly R105 (shared-mutable default argument).

``schedule_shared`` mutates a default list shared across calls;
``schedule_fresh`` is the sanctioned None-default shape.
"""


def schedule_shared(job, seen=[]):
    seen.append(job)
    return seen


def schedule_fresh(job, seen=None):
    if seen is None:
        seen = []
    seen.append(job)
    return seen
