"""Guarded module: reaches a clock two hops away."""

from util.helpers import jitter


def run(steps: int) -> float:
    total = 0.0
    for _ in range(steps):
        total += jitter()
    return total
