"""The hazard lives here, outside every guarded tree."""

import time


def now_s() -> float:
    return time.time()
