"""Helper laundering a wall-clock read."""

from util.clocksource import now_s


def jitter() -> float:
    return now_s() * 1e-9
