"""Fixture: violates exactly R005 (float sum over a set)."""


def total_energy(samples) -> float:
    return sum({round(s, 6) for s in samples})
