"""Fixture: violates exactly R002 (wall-clock read under sim/)."""

import time


def stamp() -> float:
    return time.time()
