"""Fixture: violates exactly R003 (BLAS dot in a bit-exact module)."""
# repro: bit-exact

import numpy as np


def reduce_rows(matrix, weights):
    return np.dot(matrix, weights)
