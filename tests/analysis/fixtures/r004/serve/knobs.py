"""Fixture: violates exactly R004 (environment read outside the pool/cache)."""

import os


def batch_size() -> int:
    return int(os.environ.get("REPRO_BATCH", "64"))
