"""Fixture: violates exactly R104 (lambda in a pipe-dispatched payload).

``enqueue_lambda`` sends an unpicklable shape; ``enqueue_plain`` is the
negative case sending data only.
"""


def enqueue_lambda(pipe, items):
    pipe.send(("map", lambda item: item + 1, items))


def enqueue_plain(pipe, items):
    pipe.send(("map", items))
