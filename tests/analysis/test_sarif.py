"""SARIF 2.1.0 output: structure, levels, suppressions, schema.

``jsonschema`` validates the emitted log against a vendored subset of
the SARIF 2.1.0 schema (the structural core GitHub code scanning
ingests; the full OASIS schema needs network-resolved refs the test
environment forbids).
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro.analysis import (
    Baseline,
    report_to_sarif,
    run_lint,
)
from repro.analysis.sarif import SARIF_VERSION, TOOL_NAME
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

#: Structural subset of the SARIF 2.1.0 schema: the fields the emitter
#: promises and code scanning requires.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture()
def mixed_report(tmp_path):
    """A report with one new, one baselined, one suppressed finding."""
    root = tmp_path / "pkg"
    (root / "sim").mkdir(parents=True)
    (root / "sim" / "mixed.py").write_text(
        "import time\n"
        "import numpy as np\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def grandfathered():\n"
        "    return time.perf_counter()\n"
        "\n"
        "\n"
        "def sanctioned():\n"
        "    return np.random.rand(3)  # repro: allow[R001]\n"
    )
    probe = run_lint(package_root=root)
    grandfather = [
        f for f in probe.new_findings if "perf_counter" in f.snippet
    ]
    baseline = Baseline.from_findings(grandfather)
    return run_lint(package_root=root, baseline=baseline)


def test_sarif_levels_and_suppression_kinds(mixed_report):
    log = report_to_sarif(mixed_report)
    assert log["version"] == SARIF_VERSION
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == TOOL_NAME
    by_level = {}
    for result in run["results"]:
        by_level.setdefault(result["level"], []).append(result)
    assert len(by_level["error"]) == 1
    assert "suppressions" not in by_level["error"][0]
    kinds = sorted(
        result["suppressions"][0]["kind"] for result in by_level["note"]
    )
    assert kinds == ["external", "inSource"]


def test_sarif_declares_every_shipped_rule(mixed_report):
    from repro.analysis import RULES_BY_ID

    log = report_to_sarif(mixed_report)
    declared = [rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]]
    assert declared == sorted(RULES_BY_ID)


def test_sarif_fingerprint_matches_baseline_key(mixed_report):
    log = report_to_sarif(mixed_report)
    error = next(
        r for r in log["runs"][0]["results"] if r["level"] == "error"
    )
    finding = mixed_report.new_findings[0]
    assert error["partialFingerprints"]["reproLintKey/v1"] == "|".join(
        finding.baseline_key
    )
    region = error["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == finding.line
    assert region["startColumn"] == finding.col + 1


def test_sarif_validates_against_subset_schema(mixed_report):
    log = report_to_sarif(mixed_report)
    jsonschema.validate(log, SARIF_SUBSET_SCHEMA)


def test_cli_sarif_format_and_artifact(tmp_path, capsys):
    out_path = tmp_path / "lint.sarif"
    assert main(["lint", "--format", "sarif", "--sarif", str(out_path)]) == 0
    stdout_log = json.loads(capsys.readouterr().out)
    file_log = json.loads(out_path.read_text())
    assert stdout_log == file_log
    jsonschema.validate(file_log, SARIF_SUBSET_SCHEMA)
    # The shipped tree is clean: only suppressed notes, no errors.
    assert all(
        result["level"] == "note"
        for result in file_log["runs"][0]["results"]
    )
