"""Detail cases for the concurrency family (R101..R105).

The fixture trees under ``fixtures/r10x`` cover the canonical positive
and negative shape of each rule (``test_rules`` runs them); this module
exercises the edges: scope boundaries, the sanctioned idioms, typo
detection, and binding thresholds.
"""

from pathlib import Path

from repro.analysis import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def _write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)


def _rule_ids(report):
    return [f.rule_id for f in report.new_findings]


# ----------------------------------------------------------------------
# R101
# ----------------------------------------------------------------------
def test_r101_ignores_module_level_locks_outside_worker_trees(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "experiments/driver.py": (
                "import threading\n\nGUARD = threading.Lock()\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()


def test_r101_flags_import_time_open_and_class_body_state(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "runtime/handles.py": (
                "import threading\n"
                "\n"
                'LOG = open("fleet.log")\n'
                "\n"
                "\n"
                "class Router:\n"
                "    guard = threading.Lock()\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert _rule_ids(report) == ["R101", "R101"]


# ----------------------------------------------------------------------
# R102
# ----------------------------------------------------------------------
def test_r102_bans_tempfile_and_non_tmp_renames(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "learn/registry.py": (
                "import os\n"
                "import tempfile\n"
                "\n"
                "\n"
                "def publish(path, payload):\n"
                "    handle = tempfile.NamedTemporaryFile(delete=False)\n"
                "    handle.write(payload)\n"
                "    os.replace(handle.name, path)\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    # tempfile use and the rename-from-non-tmp are separate findings
    # (plus R101 is silent: the handle is created inside a function).
    assert _rule_ids(report) == ["R102", "R102"]


def test_r102_accepts_the_tmp_sibling_convention(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "experiments/cache.py": (
                "import os\n"
                "\n"
                "\n"
                "def publish(path, payload):\n"
                '    tmp = f"{path}.{os.getpid()}.tmp"\n'
                '    with open(tmp, "wb") as handle:\n'
                "        handle.write(payload)\n"
                "    os.replace(tmp, path)\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()


def test_r102_does_not_apply_outside_the_publish_modules(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "experiments/report.py": (
                "def dump(path, text):\n"
                '    with open(path, "w") as handle:\n'
                "        handle.write(text)\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()


# ----------------------------------------------------------------------
# R103
# ----------------------------------------------------------------------
def test_r103_flags_typo_literals_at_dispatch_sites(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "serve/proto.py": (
                'OP_VERBS = frozenset({"get", "put", "del"})\n'
                "\n"
                "\n"
                "def route(verb):\n"
                '    if verb == "get":\n'
                "        return 1\n"
                '    if verb == "put":\n'
                "        return 2\n"
                '    if verb == "dle":\n'
                "        return 3\n"
                "    raise ValueError(verb)\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    messages = [f.message for f in report.new_findings]
    assert _rule_ids(report) == ["R103", "R103"]
    assert any("does not handle 'del'" in m for m in messages)
    assert any("'dle' compared at a OP_VERBS dispatch site" in m for m in messages)


def test_r103_match_statement_counts_as_dispatch(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "serve/proto.py": (
                'OP_VERBS = ("get", "put")\n'
                "\n"
                "\n"
                "def route(verb):\n"
                "    match verb:\n"
                '        case "get":\n'
                "            return 1\n"
                '        case "put":\n'
                "            return 2\n"
                "    raise ValueError(verb)\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()


def test_r103_single_literal_groups_never_bind(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "serve/proto.py": (
                'OP_VERBS = frozenset({"get", "put", "del"})\n'
                "\n"
                "\n"
                "def is_read(verb):\n"
                '    return verb == "get"\n'
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()


# ----------------------------------------------------------------------
# R104
# ----------------------------------------------------------------------
def test_r104_flags_function_local_callables_in_payloads(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "serve/router.py": (
                "def dispatch(pipe, items):\n"
                "    def score(item):\n"
                "        return item * 2\n"
                '    pipe.send(("score", score, items))\n'
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert _rule_ids(report) == ["R104"]
    assert "'score'" in report.new_findings[0].message


def test_r104_allows_module_level_callables_in_payloads(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "serve/router.py": (
                "def score(item):\n"
                "    return item * 2\n"
                "\n"
                "\n"
                "def dispatch(pipe, items):\n"
                '    pipe.send(("score", score, items))\n'
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()


# ----------------------------------------------------------------------
# R105
# ----------------------------------------------------------------------
def test_r105_covers_kwonly_lambda_and_comprehension_defaults(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "learn/hooks.py": (
                "def record(event, *, sinks={}):\n"
                "    return sinks\n"
                "\n"
                "\n"
                "tap = lambda x, acc=[]: acc  # noqa: E731\n"
                "\n"
                "\n"
                "def explode(n, cells=[0 for _ in range(4)]):\n"
                "    return cells\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert _rule_ids(report) == ["R105", "R105", "R105"]


def test_r105_ignores_immutable_and_none_defaults(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "runtime/workers.py": (
                "def launch(count=4, names=(), config=None, tag=\"x\"):\n"
                "    return (count, names, config, tag)\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()
