"""The project-wide call graph: resolution, queries, determinism."""

from pathlib import Path

from repro.analysis import build_call_graph
from repro.analysis.callgraph import CallGraph, module_dotted
from repro.analysis.engine import discover_files, parse_module

FIXTURES = Path(__file__).parent / "fixtures"


def _graph_of(root: Path) -> CallGraph:
    modules = [parse_module(path, root) for path in discover_files(root)]
    return CallGraph.build(modules)


def _write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)


def test_module_dotted():
    assert module_dotted("serve/shard.py") == "serve.shard"
    assert module_dotted("kernel.py") == "kernel"
    assert module_dotted("serve/__init__.py") == "serve"
    assert module_dotted("__init__.py") == ""


def test_taint_fixture_edges_resolve_across_modules():
    graph = _graph_of(FIXTURES / "taint")
    assert set(graph.functions) == {
        "sim.runner.run",
        "util.helpers.jitter",
        "util.clocksource.now_s",
    }
    run_calls = graph.calls_from("sim.runner.run")
    resolved = [s for s in run_calls if s.callee == "util.helpers.jitter"]
    assert len(resolved) == 1

    now_calls = graph.calls_from("util.clocksource.now_s")
    assert [s.external for s in now_calls] == ["time.time"]

    assert graph.callers_of("util.helpers.jitter") == ["sim.runner.run"]
    assert graph.callers_of("util.clocksource.now_s") == ["util.helpers.jitter"]
    assert graph.callers_of("sim.runner.run") == []


def test_local_self_and_prefix_stripped_resolution(tmp_path):
    _write_tree(
        tmp_path,
        {
            "core/engine.py": (
                "from pkg.util.maths import scale\n"
                "\n"
                "\n"
                "def helper(x):\n"
                "    return x + 1\n"
                "\n"
                "\n"
                "class Engine:\n"
                "    def step(self, x):\n"
                "        return self.finish(helper(scale(x)))\n"
                "\n"
                "    def finish(self, x):\n"
                "        return x\n"
            ),
            "util/maths.py": "def scale(x):\n    return 2 * x\n",
        },
    )
    graph = _graph_of(tmp_path)
    callees = {s.callee for s in graph.calls_from("core.engine.Engine.step")}
    # Bare local name, self.method, and an absolute import whose leading
    # package component is stripped all land on scanned nodes.
    assert callees == {
        "core.engine.helper",
        "core.engine.Engine.finish",
        "util.maths.scale",
    }


def test_nested_def_calls_attributed_to_enclosing_function(tmp_path):
    _write_tree(
        tmp_path,
        {
            "a.py": (
                "import time\n"
                "\n"
                "\n"
                "def outer():\n"
                "    def cb():\n"
                "        return time.time()\n"
                "    return cb\n"
            ),
        },
    )
    graph = _graph_of(tmp_path)
    assert "a.outer" in graph.functions
    assert "a.outer.cb" not in graph.functions
    assert [s.external for s in graph.calls_from("a.outer")] == ["time.time"]


def test_graph_record_is_deterministic():
    first = _graph_of(FIXTURES / "taint").to_record()
    second = _graph_of(FIXTURES / "taint").to_record()
    assert first == second
    assert first["functions"] == 3
    assert first["modules"] == [
        "sim/runner.py",
        "util/clocksource.py",
        "util/helpers.py",
    ]


def test_build_call_graph_covers_the_shipped_package():
    graph = build_call_graph()
    record = graph.to_record()
    assert record["functions"] > 400
    # Spot-check a real cross-package edge: the public API resolves
    # into the training layer.
    assert any(
        site.callee == "models.training.train_models"
        for site in graph.calls_from("api.default_trained_models")
    )
