"""Interprocedural taint: indirect hazards reported with call paths."""

import shutil
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.dataflow import TAINT_RULES

FIXTURES = Path(__file__).parent / "fixtures"


def _write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)


def test_two_hop_wall_clock_reported_with_full_call_path():
    report = run_lint(package_root=FIXTURES / "taint")
    assert len(report.new_findings) == 1, report.render()
    finding = report.new_findings[0]
    assert finding.rule_id == "R002"
    # Anchored at the guarded module's first hop, not at the hazard.
    assert finding.path == "sim/runner.py"
    assert "jitter()" in finding.snippet
    assert "via call path" in finding.message
    assert (
        "sim/runner.py::sim.runner.run:9"
        " -> util/helpers.py::util.helpers.jitter:7"
        " -> util/clocksource.py::util.clocksource.now_s:7"
        " -> time.time" in finding.message
    )


def test_direct_hazard_fixture_reports_identically_to_before():
    """The r002 direct-call fixture yields exactly the direct finding."""
    report = run_lint(package_root=FIXTURES / "r002")
    assert len(report.new_findings) == 1, report.render()
    finding = report.new_findings[0]
    assert finding.rule_id == "R002"
    assert finding.path == "sim/clocked.py"
    # Not a taint finding: the per-module rule owns direct hazards.
    assert "via call path" not in finding.message


def test_suppressed_source_does_not_taint_callers(tmp_path):
    root = tmp_path / "pkg"
    shutil.copytree(FIXTURES / "taint", root)
    source = root / "util" / "clocksource.py"
    source.write_text(
        source.read_text().replace(
            "return time.time()",
            "return time.time()  # repro: allow[R002]",
        )
    )
    report = run_lint(package_root=root)
    assert report.new_findings == [], report.render()


def test_hazard_inside_guarded_scope_is_not_double_reported(tmp_path):
    """A chain ending in another guarded module is the direct rule's
    finding there -- taint stays silent instead of repeating it."""
    _write_tree(
        tmp_path / "pkg",
        {
            "sim/outer.py": (
                "from sim.inner import stamp\n"
                "\n"
                "\n"
                "def run():\n"
                "    return stamp()\n"
            ),
            "sim/inner.py": (
                "import time\n"
                "\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    findings = [(f.rule_id, f.path) for f in report.new_findings]
    # Only the direct finding at the hazard site.
    assert findings == [("R002", "sim/inner.py")]


def test_rng_taint_reaches_guarded_caller(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "models/fit.py": (
                "from util.noise import sample\n"
                "\n"
                "\n"
                "def fit(n):\n"
                "    return sample(n)\n"
            ),
            "util/noise.py": (
                "import numpy as np\n"
                "\n"
                "\n"
                "def sample(n):\n"
                "    return np.random.rand(n)\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    findings = [(f.rule_id, f.path) for f in report.new_findings]
    # R001's direct rule is tree-wide, so the hazard itself is also
    # flagged at its home; taint adds the guarded caller's finding.
    assert findings == [
        ("R001", "models/fit.py"),
        ("R001", "util/noise.py"),
    ]
    assert "numpy.random.rand reachable from models.fit.fit" in (
        report.new_findings[0].message
    )


def test_env_taint_reaches_guarded_caller(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "soc/tune.py": (
                "from util.knobs import theta\n"
                "\n"
                "\n"
                "def tuned():\n"
                "    return theta()\n"
            ),
            "util/knobs.py": (
                "import os\n"
                "\n"
                "\n"
                "def theta():\n"
                '    return float(os.environ.get("THETA", "1.0"))\n'
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    findings = [(f.rule_id, f.path) for f in report.new_findings]
    # The env read in util/ is unguarded and R004-clean there (R004 only
    # restricts guarded trees); only taint sees the laundering.
    assert ("R004", "soc/tune.py") in findings


def test_unguarded_caller_is_not_a_sink(tmp_path):
    _write_tree(
        tmp_path / "pkg",
        {
            "cli_tools/report.py": (
                "from util.clock import now\n"
                "\n"
                "\n"
                "def banner():\n"
                "    return now()\n"
            ),
            "util/clock.py": (
                "import time\n"
                "\n"
                "\n"
                "def now():\n"
                "    return time.time()\n"
            ),
        },
    )
    report = run_lint(package_root=tmp_path / "pkg")
    assert report.new_findings == [], report.render()


def test_taint_rules_share_direct_rule_ids():
    assert [rule.rule_id for rule in TAINT_RULES] == ["R001", "R002", "R004"]


def test_inline_allow_at_the_call_site_suppresses_the_taint_finding(tmp_path):
    root = tmp_path / "pkg"
    shutil.copytree(FIXTURES / "taint", root)
    runner = root / "sim" / "runner.py"
    runner.write_text(
        runner.read_text().replace(
            "total += jitter()",
            "total += jitter()  # repro: allow[R002]",
        )
    )
    report = run_lint(package_root=root)
    assert report.new_findings == [], report.render()
    assert [f.rule_id for f in report.suppressed] == ["R002"]
