"""The ``repro lint`` command: exit codes, formats, injection gate.

The injection test is the acceptance criterion in the flesh: copy the
real package tree, drop any violation fixture into it, and the CLI
must flip from exit 0 to exit 1 with the *shipped* baseline applied.
"""

import json
import shutil
from pathlib import Path

import pytest

import repro
from repro.analysis import default_baseline_path
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_ROOT = Path(repro.__file__).parent


def _copied_package(tmp_path: Path) -> Path:
    root = tmp_path / "repro"
    shutil.copytree(
        PACKAGE_ROOT, root, ignore=shutil.ignore_patterns("__pycache__")
    )
    return root


def test_lint_exits_zero_at_head(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 new" in out


def test_lint_json_format(capsys):
    assert main(["lint", "--format", "json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["ok"] is True
    assert record["new"] == []
    assert record["files_scanned"] > 50
    # The R005 baseline was burned down; nothing is grandfathered.
    assert record["baselined"] == []
    # Per-rule wall-clock cost is reported for every active rule, plus
    # the call-graph build the project rules share.
    assert set(record["timings_s"]) >= {"R001", "R103", "callgraph"}


def test_lint_writes_report_artifact(tmp_path, capsys):
    out_path = tmp_path / "lint-report.json"
    assert main(["lint", "--output", str(out_path)]) == 0
    record = json.loads(out_path.read_text())
    assert record["ok"] is True


def test_lint_rule_filter_and_no_baseline(capsys):
    # After the R005 burn-down every rule passes without the baseline.
    assert main(["lint", "--rules", "R005", "--no-baseline"]) == 0
    assert main(["lint", "--rules", "R003", "--no-baseline"]) == 0
    # Comma-separated selection is equivalent to space-separated.
    assert main(["lint", "--rules", "R005,R003", "--no-baseline"]) == 0


def test_lint_graph_dump(capsys):
    assert main(["lint", "--graph"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["functions"] > 400
    assert "serve/shard.py" in record["modules"]
    assert any(
        edge["external"] == "numpy.random.SeedSequence"
        for edge in record["edges"]
    )


def test_lint_exclude_skips_prefixes(capsys):
    # Excluding the only violating subtree of a fixture root passes.
    root = FIXTURES / "r002"
    assert main(["lint", "--root", str(root), "--exclude", "sim"]) == 0
    assert main(["lint", "--root", str(root)]) == 1


def test_full_scan_stays_fast():
    from time import perf_counter

    from repro.analysis import run_lint

    start = perf_counter()
    report = run_lint()
    elapsed = perf_counter() - start
    assert report.ok
    assert elapsed < 10.0, f"full lint scan took {elapsed:.1f}s"


def test_lint_unknown_rule_is_usage_error(capsys):
    assert main(["lint", "--rules", "R999"]) == 2
    err = capsys.readouterr().err
    # The error names the unknown id and lists the known ones.
    assert "R999" in err
    assert "R001" in err and "R105" in err


@pytest.mark.parametrize(
    "fixture, member",
    [
        ("r001", "workloads/noisy.py"),
        ("r002", "sim/clocked.py"),
        ("r003", "kernel.py"),
        ("r004", "serve/knobs.py"),
        ("r005", "stats.py"),
        ("r006", "core/mutator.py"),
        ("r101", "serve/state.py"),
        ("r102", "learn/registry.py"),
        ("r103", "serve/proto.py"),
        ("r104", "serve/dispatchers.py"),
        ("r105", "runtime/queueing.py"),
    ],
)
def test_injected_violation_fails_the_gate(tmp_path, capsys, fixture, member):
    """Copy the real tree, inject one fixture violation, expect exit 1."""
    root = _copied_package(tmp_path)
    source = FIXTURES / fixture / member
    target = root / member
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(source, target)

    args = [
        "lint",
        "--root", str(root),
        "--baseline", str(default_baseline_path()),
    ]
    assert main(args) == 1
    out = capsys.readouterr().out
    assert fixture.upper() in out  # the rule id appears in the report


def test_copied_tree_without_injection_passes(tmp_path, capsys):
    root = _copied_package(tmp_path)
    args = [
        "lint",
        "--root", str(root),
        "--baseline", str(default_baseline_path()),
    ]
    assert main(args) == 0


def test_write_baseline_round_trip(tmp_path, capsys):
    root = tmp_path / "pkg"
    shutil.copytree(FIXTURES / "r004", root)
    baseline_path = tmp_path / "baseline.json"

    # Gate fails before the baseline exists...
    assert main(["lint", "--root", str(root), "--baseline", str(baseline_path)]) == 1
    # ...writing the baseline grandfathers the finding...
    assert (
        main([
            "lint", "--root", str(root),
            "--baseline", str(baseline_path), "--write-baseline",
        ])
        == 0
    )
    # ...and the gate passes afterwards.
    assert main(["lint", "--root", str(root), "--baseline", str(baseline_path)]) == 0


def test_stale_baseline_fails_the_gate(tmp_path, capsys):
    root = tmp_path / "pkg"
    shutil.copytree(FIXTURES / "r004", root)
    baseline_path = tmp_path / "baseline.json"
    main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--write-baseline",
    ])
    # Fix the violation; the now-stale entry must fail the gate.
    (root / "serve" / "knobs.py").write_text(
        '"""Fixed."""\n\n\ndef batch_size() -> int:\n    return 64\n'
    )
    assert main(["lint", "--root", str(root), "--baseline", str(baseline_path)]) == 1
    assert "stale" in capsys.readouterr().out
