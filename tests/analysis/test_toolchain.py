"""The configured external gates, when their tools are installed.

The container running tier-1 does not ship ruff/mypy (CI's ``static``
job installs the ``dev`` extra and runs them for real); these tests
validate the pyproject configuration wherever the tools exist and skip
cleanly everywhere else.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _have_module(name: str) -> bool:
    import importlib.util

    return importlib.util.find_spec(name) is not None


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(not _have_module("mypy"), reason="mypy not installed")
def test_mypy_clean():
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
