"""Suppression edge cases: stacked tags, shared lines, baseline interplay."""

from pathlib import Path

from repro.analysis import Baseline, run_lint


def _module(tmp_path: Path, text: str) -> Path:
    root = tmp_path / "pkg"
    (root / "sim").mkdir(parents=True)
    (root / "sim" / "hot.py").write_text(text)
    return root


#: One line violating two rules at once: a wall-clock read (R002,
#: restricted under sim/) inside a float sum over a set (R005).
_DOUBLE_HAZARD = "    return sum({time.time() for _ in range(3)})"


def test_multiple_allow_tags_on_one_line_each_apply(tmp_path):
    root = _module(
        tmp_path,
        "import time\n"
        "\n"
        "\n"
        "def totals():\n"
        + _DOUBLE_HAZARD
        + "  # repro: allow[R002]  # repro: allow[R005]\n",
    )
    report = run_lint(package_root=root)
    assert report.new_findings == [], report.render()
    assert sorted(f.rule_id for f in report.suppressed) == ["R002", "R005"]


def test_allow_for_one_rule_leaves_the_other_finding_live(tmp_path):
    root = _module(
        tmp_path,
        "import time\n"
        "\n"
        "\n"
        "def totals():\n" + _DOUBLE_HAZARD + "  # repro: allow[R002]\n",
    )
    report = run_lint(package_root=root)
    assert [f.rule_id for f in report.suppressed] == ["R002"]
    assert [f.rule_id for f in report.new_findings] == ["R005"]


def test_suppressing_a_baselined_finding_makes_the_entry_stale(tmp_path):
    source = (
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    root = _module(tmp_path, source)
    probe = run_lint(package_root=root)
    assert [f.rule_id for f in probe.new_findings] == ["R002"]
    baseline = Baseline.from_findings(probe.new_findings)

    # Now the same violation gains an allow comment (standalone, on the
    # line above, so the violating line's text -- the baseline key --
    # is unchanged): suppression claims the finding first, the entry no
    # longer matches anything, and it must be reported stale.
    (root / "sim" / "hot.py").write_text(
        source.replace(
            "    return time.time()",
            "    # repro: allow[R002]\n    return time.time()",
        )
    )
    report = run_lint(package_root=root, baseline=baseline)
    assert report.new_findings == []
    assert [f.rule_id for f in report.suppressed] == ["R002"]
    assert report.baselined == []
    assert [key[0] for key in report.stale_baseline] == ["R002"]
