"""Response-surface regression tests (Equations 2-4)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.regression import (
    RegressionModel,
    ResponseSurface,
    term_count,
)


def _random_inputs(n=200, k=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-2.0, 2.0, size=(n, k))


class TestExactRecovery:
    def test_linear_surface_recovers_linear_data(self):
        inputs = _random_inputs()
        targets = 3.0 + inputs @ np.array([1.0, -2.0, 0.5, 4.0])
        model = RegressionModel.fit(inputs, targets, ResponseSurface.LINEAR)
        assert np.allclose(model.predict(inputs), targets, atol=1e-8)

    def test_interaction_surface_recovers_cross_products(self):
        inputs = _random_inputs()
        targets = 1.0 + inputs[:, 0] * inputs[:, 1] - 2.0 * inputs[:, 2]
        model = RegressionModel.fit(inputs, targets, ResponseSurface.INTERACTION)
        assert np.allclose(model.predict(inputs), targets, atol=1e-8)

    def test_linear_surface_cannot_fit_cross_products(self):
        inputs = _random_inputs()
        targets = inputs[:, 0] * inputs[:, 1]
        model = RegressionModel.fit(inputs, targets, ResponseSurface.LINEAR)
        residual = np.abs(model.predict(inputs) - targets)
        assert residual.max() > 0.1

    def test_quadratic_surface_recovers_squares(self):
        inputs = _random_inputs()
        targets = 2.0 + inputs[:, 0] ** 2 + 0.5 * inputs[:, 1]
        model = RegressionModel.fit(inputs, targets, ResponseSurface.QUADRATIC)
        assert np.allclose(model.predict(inputs), targets, atol=1e-8)

    def test_interaction_surface_cannot_fit_squares(self):
        """Eq. 4 excludes i == j terms; squares need Eq. 3."""
        inputs = _random_inputs()
        targets = inputs[:, 0] ** 2
        model = RegressionModel.fit(inputs, targets, ResponseSurface.INTERACTION)
        assert np.abs(model.predict(inputs) - targets).max() > 0.1

    def test_prediction_generalizes_off_training_points(self):
        inputs = _random_inputs(seed=1)
        coefficients = np.array([2.0, 0.0, -1.0, 3.0])
        targets = inputs @ coefficients
        model = RegressionModel.fit(inputs, targets, ResponseSurface.LINEAR)
        probe = np.array([[0.3, -0.4, 1.2, 0.1]])
        assert model.predict(probe)[0] == pytest.approx(
            float((probe @ coefficients)[0]), abs=1e-8
        )


class TestWeighting:
    def test_relative_weights_reduce_relative_error(self):
        """Fitting a misspecified (linear) surface to convex data:
        1/y^2 weights trade absolute error at large targets for a much
        better *relative* fit on small ones -- the Fig. 5 metric."""
        rng = np.random.default_rng(2)
        inputs = rng.uniform(0.5, 5.0, size=(300, 1))
        targets = inputs[:, 0] ** 2
        weighted = RegressionModel.fit(
            inputs, targets, ResponseSurface.LINEAR, weights=1.0 / targets**2
        )
        unweighted = RegressionModel.fit(inputs, targets, ResponseSurface.LINEAR)
        weighted_rel = np.abs(weighted.predict(inputs) - targets) / targets
        unweighted_rel = np.abs(unweighted.predict(inputs) - targets) / targets
        assert weighted_rel.mean() < unweighted_rel.mean()

    def test_weight_shape_mismatch_rejected(self):
        inputs = _random_inputs(n=10)
        targets = np.ones(10)
        with pytest.raises(ValueError):
            RegressionModel.fit(
                inputs, targets, ResponseSurface.LINEAR, weights=np.ones(5)
            )

    def test_negative_weights_rejected(self):
        inputs = _random_inputs(n=10)
        targets = np.ones(10)
        with pytest.raises(ValueError):
            RegressionModel.fit(
                inputs, targets, ResponseSurface.LINEAR, weights=-np.ones(10)
            )


class TestTermCounts:
    def test_linear(self):
        assert term_count(9, ResponseSurface.LINEAR) == 10

    def test_interaction(self):
        assert term_count(9, ResponseSurface.INTERACTION) == 10 + 36

    def test_quadratic(self):
        assert term_count(9, ResponseSurface.QUADRATIC) == 10 + 36 + 9


class TestRobustness:
    def test_constant_column_is_harmless(self):
        """A zero-variance feature standardizes to zero and drops out."""
        inputs = _random_inputs()
        inputs[:, 2] = 7.0
        targets = 1.0 + inputs[:, 0]
        model = RegressionModel.fit(inputs, targets, ResponseSurface.INTERACTION)
        assert np.allclose(model.predict(inputs), targets, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RegressionModel.fit(np.ones(5), np.ones(5), ResponseSurface.LINEAR)
        with pytest.raises(ValueError):
            RegressionModel.fit(np.ones((5, 2)), np.ones(4), ResponseSurface.LINEAR)
        with pytest.raises(ValueError):
            RegressionModel.fit(
                np.ones((0, 2)), np.ones(0), ResponseSurface.LINEAR
            )

    def test_predict_feature_count_checked(self):
        inputs = _random_inputs(k=3)
        model = RegressionModel.fit(
            inputs, inputs[:, 0], ResponseSurface.LINEAR
        )
        with pytest.raises(ValueError):
            model.predict(np.ones((1, 4)))

    def test_mean_abs_pct_error(self):
        inputs = _random_inputs()
        targets = 5.0 + inputs @ np.array([1.0, 1.0, 1.0, 1.0])
        targets = np.abs(targets) + 1.0
        model = RegressionModel.fit(inputs, targets, ResponseSurface.LINEAR)
        assert model.mean_abs_pct_error(inputs, targets) < 0.2

    def test_mean_abs_pct_error_requires_positive_targets(self):
        inputs = _random_inputs(n=5)
        model = RegressionModel.fit(
            inputs, np.ones(5), ResponseSurface.LINEAR
        )
        with pytest.raises(ValueError):
            model.mean_abs_pct_error(inputs, np.zeros(5))

    @given(seed=st.integers(0, 1000))
    def test_fit_predict_round_trip_property(self, seed):
        """Any noise-free linear data set is fitted exactly."""
        rng = np.random.default_rng(seed)
        inputs = rng.uniform(-1.0, 1.0, size=(40, 3))
        coefficients = rng.uniform(-3.0, 3.0, size=3)
        targets = rng.uniform(-2, 2) + inputs @ coefficients
        model = RegressionModel.fit(inputs, targets, ResponseSurface.LINEAR)
        assert np.allclose(model.predict(inputs), targets, atol=1e-7)
