"""Model persistence round-trip tests."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.browser.dom import PageFeatures
from repro.models.serialization import (
    load_predictor,
    predictor_from_dict,
    predictor_to_dict,
    save_predictor,
)


@pytest.fixture()
def census():
    return PageFeatures(1500, 150, 300, 280, 120)


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, small_predictor, census):
        data = predictor_to_dict(small_predictor)
        rebuilt = predictor_from_dict(data)
        original = small_predictor.prediction_table(census, 5.0, 1.0, 55.0)
        restored = rebuilt.prediction_table(census, 5.0, 1.0, 55.0)
        for a, b in zip(original, restored):
            assert a.freq_hz == b.freq_hz
            assert a.load_time_s == pytest.approx(b.load_time_s, rel=1e-12)
            assert a.power_w == pytest.approx(b.power_w, rel=1e-12)

    def test_file_round_trip(self, small_predictor, census, tmp_path):
        path = tmp_path / "models.json"
        save_predictor(small_predictor, path)
        rebuilt = load_predictor(path)
        point = rebuilt.predict_at(census, 0.0, 0.0, 48.0, 2265.6e6)
        expected = small_predictor.predict_at(census, 0.0, 0.0, 48.0, 2265.6e6)
        assert point.load_time_s == pytest.approx(expected.load_time_s)

    def test_artifact_is_plain_json(self, small_predictor, tmp_path):
        path = tmp_path / "models.json"
        save_predictor(small_predictor, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-dora-models"
        assert "load_time_model" in data
        assert "leakage" in data


@pytest.fixture(scope="module")
def rebuilt_predictor(small_predictor):
    """One dict round trip, shared across every property example."""
    return predictor_from_dict(predictor_to_dict(small_predictor))


class TestRoundTripProperty:
    """JSON floats round-trip exactly (repr emits the shortest string
    that parses back to the same double), so a persisted model must be
    *bit-identical* to the original -- the property the learn registry
    and the closed-loop retraining invariant build on."""

    @given(
        census=st.builds(
            PageFeatures,
            dom_nodes=st.integers(100, 9000),
            class_attributes=st.integers(0, 2000),
            href_attributes=st.integers(0, 1500),
            a_tags=st.integers(0, 1500),
            div_tags=st.integers(0, 3000),
        ),
        mpki=st.floats(0.0, 20.0),
        util=st.floats(0.0, 1.0),
        temp=st.floats(20.0, 80.0),
    )
    def test_bit_identical_on_the_page_frequency_grid(
        self, small_predictor, rebuilt_predictor, census, mpki, util, temp
    ):
        for freq_hz in small_predictor.candidates():
            original = small_predictor.predict_at(
                census, mpki, util, temp, freq_hz
            )
            restored = rebuilt_predictor.predict_at(
                census, mpki, util, temp, freq_hz
            )
            # Equality, not approx: the round trip may not move a bit.
            assert restored.load_time_s == original.load_time_s
            assert restored.power_w == original.power_w

    @given(temp=st.floats(20.0, 90.0))
    def test_leakage_round_trips_bit_for_bit(
        self, small_predictor, rebuilt_predictor, temp
    ):
        for state in small_predictor.spec.evaluation_states():
            assert rebuilt_predictor.leakage_model.predict(
                state.voltage_v, temp
            ) == small_predictor.leakage_model.predict(state.voltage_v, temp)


class TestValidation:
    def test_foreign_artifact_rejected(self):
        with pytest.raises(ValueError, match="not a repro"):
            predictor_from_dict({"format": "something-else"})

    def test_future_version_rejected(self, small_predictor):
        data = predictor_to_dict(small_predictor)
        data["version"] = 999
        with pytest.raises(ValueError, match="newer"):
            predictor_from_dict(data)

    def test_platform_mismatch_rejected(self, small_predictor):
        data = predictor_to_dict(small_predictor)
        data["platform"] = "pixel-9000"
        with pytest.raises(ValueError, match="trained for"):
            predictor_from_dict(data)
