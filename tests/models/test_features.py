"""Table-I feature vector tests."""

import pytest

from repro.browser.dom import PageFeatures
from repro.models.features import (
    NUM_FEATURES,
    TABLE_I_NAMES,
    IndependentVariables,
    stack,
)


def _row(**overrides):
    defaults = dict(
        dom_nodes=1000.0,
        class_attributes=100.0,
        href_attributes=200.0,
        a_tags=190.0,
        div_tags=80.0,
        l2_mpki=5.0,
        core_freq_ghz=1.5,
        bus_freq_mhz=533.0,
        corunner_utilization=1.0,
    )
    defaults.update(overrides)
    return IndependentVariables(**defaults)


class TestLayout:
    def test_nine_variables_as_in_table_one(self):
        assert NUM_FEATURES == 9
        assert len(TABLE_I_NAMES) == 9

    def test_array_follows_table_one_order(self):
        array = _row().as_array()
        assert array.shape == (9,)
        assert array[0] == 1000.0  # X1 DOM nodes
        assert array[5] == 5.0  # X6 MPKI
        assert array[6] == 1.5  # X7 core frequency
        assert array[7] == 533.0  # X8 bus frequency
        assert array[8] == 1.0  # X9 co-runner utilization

    def test_build_from_census(self):
        census = PageFeatures(500, 50, 90, 85, 40)
        row = IndependentVariables.build(
            page=census,
            l2_mpki=2.0,
            core_freq_hz=1190.4e6,
            bus_freq_hz=400e6,
            corunner_utilization=0.8,
        )
        assert row.dom_nodes == 500.0
        assert row.core_freq_ghz == pytest.approx(1.1904)
        assert row.bus_freq_mhz == pytest.approx(400.0)

    def test_stack_shapes(self):
        matrix = stack([_row(), _row(dom_nodes=2.0)])
        assert matrix.shape == (2, 9)
        assert matrix[1, 0] == 2.0

    def test_stack_rejects_empty(self):
        with pytest.raises(ValueError):
            stack([])

    def test_replacing_creates_modified_copy(self):
        row = _row()
        blind = row.replacing(l2_mpki=0.0, corunner_utilization=0.0)
        assert blind.l2_mpki == 0.0
        assert row.l2_mpki == 5.0
        assert blind.dom_nodes == row.dom_nodes


class TestValidation:
    def test_non_positive_frequencies_rejected(self):
        with pytest.raises(ValueError):
            _row(core_freq_ghz=0.0)
        with pytest.raises(ValueError):
            _row(bus_freq_mhz=-1.0)

    def test_negative_mpki_rejected(self):
        with pytest.raises(ValueError):
            _row(l2_mpki=-0.1)

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            _row(corunner_utilization=1.2)
