"""Piecewise surfaces, leakage fit, and the prediction bundle."""

import numpy as np
import pytest

from repro.browser.dom import PageFeatures
from repro.models.features import IndependentVariables
from repro.models.leakage_fit import (
    LeakageSample,
    calibration_samples,
    fit_leakage,
)
from repro.models.performance_model import (
    MIN_PREDICTED_LOAD_TIME_S,
    PiecewiseLoadTimeModel,
)
from repro.models.piecewise import PiecewiseSurface
from repro.models.power_model import MIN_PREDICTED_POWER_W, DynamicPowerModel
from repro.models.regression import ResponseSurface
from repro.soc.leakage import nexus5_leakage_parameters
from repro.soc.specs import nexus5_spec


def _row(freq_ghz, bus_mhz, mpki=0.0, nodes=1000.0):
    return IndependentVariables(
        dom_nodes=nodes,
        class_attributes=nodes * 0.1,
        href_attributes=nodes * 0.2,
        a_tags=nodes * 0.19,
        div_tags=nodes * 0.08,
        l2_mpki=mpki,
        core_freq_ghz=freq_ghz,
        bus_freq_mhz=bus_mhz,
        corunner_utilization=1.0 if mpki > 0 else 0.0,
    )


def _synthetic_dataset():
    """Rows over two bus groups with a known piecewise response."""
    rows = []
    targets = []
    for bus, freqs in ((400.0, (0.88, 0.96, 1.19)), (800.0, (1.96, 2.27))):
        for freq in freqs:
            for mpki in (0.0, 4.0, 10.0):
                for nodes in (500.0, 2000.0, 5000.0):
                    rows.append(_row(freq, bus, mpki, nodes))
                    base = 40.0 if bus == 400.0 else 55.0
                    targets.append(
                        nodes * (1.0 + 0.05 * mpki) / (freq * 1e3) + base / 1e3
                    )
    return rows, targets


class TestPiecewiseSurface:
    def test_routes_rows_to_their_bus_group(self):
        rows, targets = _synthetic_dataset()
        surface = PiecewiseSurface.fit(rows, targets, ResponseSurface.INTERACTION)
        assert set(surface.segments) == {400e6, 800e6}

    def test_fits_each_group_well(self):
        rows, targets = _synthetic_dataset()
        surface = PiecewiseSurface.fit(rows, targets, ResponseSurface.INTERACTION)
        predictions = np.array([surface.predict(row) for row in rows])
        rel = np.abs(predictions - np.array(targets)) / np.array(targets)
        assert rel.mean() < 0.05

    def test_unseen_bus_frequency_falls_back_to_nearest(self):
        rows, targets = _synthetic_dataset()
        surface = PiecewiseSurface.fit(rows, targets, ResponseSurface.LINEAR)
        segment = surface.segment_for(533e6)
        assert segment is surface.segments[400e6]

    def test_mismatched_lengths_rejected(self):
        rows, targets = _synthetic_dataset()
        with pytest.raises(ValueError):
            PiecewiseSurface.fit(rows, targets[:-1], ResponseSurface.LINEAR)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseSurface.fit([], [], ResponseSurface.LINEAR)

    def test_relative_weighting_requires_positive_targets(self):
        rows, _ = _synthetic_dataset()
        with pytest.raises(ValueError):
            PiecewiseSurface.fit(
                rows, [0.0] * len(rows), ResponseSurface.LINEAR
            )


class TestModelFloors:
    def test_load_time_prediction_is_floored(self):
        rows, _ = _synthetic_dataset()
        model = PiecewiseLoadTimeModel.fit(
            rows, [MIN_PREDICTED_LOAD_TIME_S] * len(rows)
        )
        extreme = _row(2.27, 800.0, mpki=0.0, nodes=1.0)
        assert model.predict(extreme) >= MIN_PREDICTED_LOAD_TIME_S

    def test_power_prediction_is_floored(self):
        rows, _ = _synthetic_dataset()
        model = DynamicPowerModel.fit(rows, [MIN_PREDICTED_POWER_W] * len(rows))
        extreme = _row(0.88, 400.0, mpki=0.0, nodes=1.0)
        assert model.predict(extreme) >= MIN_PREDICTED_POWER_W

    def test_predict_many_matches_predict(self):
        rows, targets = _synthetic_dataset()
        model = PiecewiseLoadTimeModel.fit(rows, targets)
        many = model.predict_many(rows[:5])
        singles = [model.predict(row) for row in rows[:5]]
        assert np.allclose(many, singles)


class TestLeakageFit:
    def test_recovers_the_true_surface_from_clean_data(self):
        truth = nexus5_leakage_parameters()
        samples = calibration_samples(
            truth,
            voltages=[0.80, 0.90, 1.00, 1.10, 1.15],
            temperatures_c=[20, 35, 50, 65, 80],
            rng=None,
        )
        fitted = fit_leakage(samples)
        for sample in samples:
            assert fitted.predict(
                sample.voltage_v, sample.temperature_c
            ) == pytest.approx(sample.leakage_w, rel=0.02)

    def test_noisy_fit_stays_accurate(self):
        truth = nexus5_leakage_parameters()
        rng = np.random.default_rng(5)
        samples = calibration_samples(
            truth,
            voltages=[s.voltage_v for s in ()]
            or sorted({st.voltage_v for st in nexus5_spec().dvfs_table}),
            temperatures_c=[20, 30, 40, 50, 60, 70, 80],
            rng=rng,
            noise=0.02,
        )
        fitted = fit_leakage(samples)
        probe = truth.power_w(1.0, 55.0)
        assert fitted.predict(1.0, 55.0) == pytest.approx(probe, rel=0.05)
        assert fitted.rms_error_w < 0.05

    def test_too_few_samples_rejected(self):
        samples = [LeakageSample(1.0, 50.0, 0.5)] * 5
        with pytest.raises(ValueError):
            fit_leakage(samples)

    def test_negative_observation_rejected(self):
        samples = [LeakageSample(1.0, 50.0, -0.1)] * 7
        with pytest.raises(ValueError):
            fit_leakage(samples)

    def test_fitted_parameters_stay_physical(self):
        truth = nexus5_leakage_parameters()
        samples = calibration_samples(
            truth, voltages=[0.8, 1.0, 1.15], temperatures_c=[20, 50, 80],
            rng=np.random.default_rng(1),
        )
        fitted = fit_leakage(samples)
        assert fitted.parameters.k1 >= 0
        assert fitted.parameters.k2 >= 0


class TestPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, small_models):
        return small_models.predictor

    def _census(self):
        return PageFeatures(1500, 150, 300, 280, 120)

    def test_table_covers_the_evaluation_candidates(self, predictor):
        table = predictor.prediction_table(self._census(), 5.0, 1.0, 50.0)
        assert len(table) == len(predictor.candidates())
        assert [p.freq_hz for p in table] == list(predictor.candidates())

    def test_predictions_are_positive(self, predictor):
        table = predictor.prediction_table(self._census(), 0.0, 0.0, 45.0)
        for point in table:
            assert point.load_time_s > 0
            assert point.power_w > 0

    def test_interference_raises_predicted_load_time(self, predictor):
        quiet = predictor.predict_at(self._census(), 0.0, 0.0, 48.0, 2265.6e6)
        noisy = predictor.predict_at(self._census(), 10.0, 1.0, 48.0, 2265.6e6)
        assert noisy.load_time_s > quiet.load_time_s

    def test_leakage_inclusion_raises_power(self, predictor):
        with_leak = predictor.predict_at(
            self._census(), 0.0, 0.0, 60.0, 2265.6e6, include_leakage=True
        )
        without = predictor.predict_at(
            self._census(), 0.0, 0.0, 60.0, 2265.6e6, include_leakage=False
        )
        assert with_leak.power_w > without.power_w

    def test_hotter_device_predicts_more_power(self, predictor):
        cool = predictor.predict_at(self._census(), 0.0, 0.0, 35.0, 2265.6e6)
        hot = predictor.predict_at(self._census(), 0.0, 0.0, 70.0, 2265.6e6)
        assert hot.power_w > cool.power_w

    def test_unknown_candidate_frequency_rejected(self, predictor):
        with pytest.raises(KeyError):
            predictor.predict_at(self._census(), 0.0, 0.0, 45.0, 1.0e9)
