"""Cross-validated surface-selection tests (on the small campaign)."""

import pytest

from repro.models.regression import ResponseSurface
from repro.models.selection import (
    cross_validate_load_time,
    cross_validate_power,
    select_surfaces,
)


class TestCrossValidation:
    def test_scores_are_finite_and_ordered(self, small_models):
        score = cross_validate_load_time(
            small_models.observations, ResponseSurface.INTERACTION
        )
        assert 0.0 <= score.in_sample_error < 0.5
        assert score.held_out_error >= 0.0
        assert score.worst_page_error >= score.held_out_error

    def test_held_out_error_exceeds_in_sample(self, small_models):
        score = cross_validate_load_time(
            small_models.observations, ResponseSurface.INTERACTION
        )
        assert score.held_out_error >= score.in_sample_error * 0.5

    def test_linear_load_time_is_clearly_worse_in_sample(self, small_models):
        linear = cross_validate_load_time(
            small_models.observations, ResponseSurface.LINEAR
        )
        interaction = cross_validate_load_time(
            small_models.observations, ResponseSurface.INTERACTION
        )
        assert linear.in_sample_error > interaction.in_sample_error

    def test_power_cv_runs(self, small_models):
        score = cross_validate_power(
            small_models.observations,
            ResponseSurface.LINEAR,
            small_models.leakage_model,
        )
        assert score.in_sample_error < 0.10

    def test_needs_at_least_three_pages(self, small_models):
        two_pages = [
            o
            for o in small_models.observations
            if o.page_name in ("amazon", "msn")
        ]
        with pytest.raises(ValueError):
            cross_validate_load_time(two_pages, ResponseSurface.LINEAR)


class TestSelection:
    def test_selection_prefers_simpler_surfaces_on_ties(self, small_models):
        """On the 3-page campaign every family extrapolates about
        equally to a held-out page, so the simplicity tie-break rules:
        both picks must be the simplest surface within one point of the
        best.  (The paper-scale selection -- interaction for load time
        -- is asserted by the Fig. 5 benchmark on the full campaign.)
        """
        time_pick, power_pick = select_surfaces(
            small_models.observations, small_models.leakage_model
        )
        assert power_pick.surface is ResponseSurface.LINEAR
        time_scores = {
            surface: cross_validate_load_time(
                small_models.observations, surface
            ).held_out_error
            for surface in ResponseSurface
        }
        best = min(time_scores.values())
        assert time_scores[time_pick.surface] <= best + 0.01
        # The pick is the *simplest* qualifying surface.
        for surface in (
            ResponseSurface.LINEAR,
            ResponseSurface.INTERACTION,
            ResponseSurface.QUADRATIC,
        ):
            if time_scores[surface] <= best + 0.01:
                assert time_pick.surface is surface
                break
