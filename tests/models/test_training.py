"""Measurement campaign and training pipeline tests.

Uses the session-scoped small campaign (three pages, four frequencies)
so the whole file runs in seconds.
"""

import numpy as np
import pytest

from repro.models.training import (
    TrainingConfig,
    error_cdf,
    measure_once,
    overall_accuracy,
    page_error_summary,
    run_campaign,
    train_models,
)
from tests.conftest import SMALL_TRAINING


class TestCampaign:
    def test_observation_count(self, small_models):
        """3 pages x (3 co-runners + solo) x 4 frequencies."""
        assert len(small_models.observations) == 3 * 4 * 4

    def test_observations_carry_measured_interference(self, small_models):
        corun = [o for o in small_models.observations if o.kernel_name]
        solo = [o for o in small_models.observations if o.kernel_name is None]
        assert all(o.row.l2_mpki > 0 for o in corun)
        assert all(o.row.l2_mpki == 0 for o in solo)
        assert all(o.row.corunner_utilization > 0.9 for o in corun)

    def test_observations_span_the_requested_frequencies(self, small_models):
        freqs = {round(o.freq_hz) for o in small_models.observations}
        assert freqs == {round(f) for f in SMALL_TRAINING.freqs_hz}

    def test_noise_makes_repeat_measurements_differ(self):
        config = TrainingConfig(dt_s=0.004, seed=1)
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(2)
        first = measure_once("amazon", "bfs", 2265.6e6, rng_a, config)
        second = measure_once("amazon", "bfs", 2265.6e6, rng_b, config)
        assert first.load_time_s != second.load_time_s

    def test_campaign_is_seed_deterministic(self):
        config = TrainingConfig(
            pages=("amazon",), freqs_hz=(2265.6e6,), dt_s=0.004, seed=11
        )
        first = run_campaign(config)
        second = run_campaign(config)
        assert [o.load_time_s for o in first] == [o.load_time_s for o in second]


class TestTraining:
    def test_training_requires_observations(self):
        with pytest.raises(ValueError):
            train_models([])

    def test_predictor_is_wired_with_all_models(self, small_models):
        predictor = small_models.predictor
        assert predictor.load_time_model is small_models.load_time_model
        assert predictor.power_model is small_models.power_model
        assert predictor.leakage_model is small_models.leakage_model

    def test_small_campaign_models_are_usably_accurate(self, small_models):
        time_acc, power_acc = overall_accuracy(small_models)
        assert time_acc > 0.90
        assert power_acc > 0.90

    def test_page_error_summary_covers_training_pages(self, small_models):
        summary = page_error_summary(small_models)
        assert set(summary) == set(SMALL_TRAINING.pages)
        for time_error, power_error in summary.values():
            assert 0.0 <= time_error < 0.2
            assert 0.0 <= power_error < 0.2


class TestErrorCdf:
    def test_cdf_is_sorted_and_ends_at_one(self):
        cdf = error_cdf([0.05, 0.01, 0.03])
        errors = [point[0] for point in cdf]
        fractions = [point[1] for point in cdf]
        assert errors == sorted(errors)
        assert fractions[-1] == 1.0
        assert fractions[0] == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_cdf([])
