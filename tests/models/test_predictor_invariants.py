"""Trained-predictor invariants against the small campaign.

These check the *direction* of the learned response surfaces -- the
properties Algorithm 1's correctness rests on -- rather than absolute
accuracy (covered elsewhere).
"""

import pytest

from repro.browser.pages import page_by_name


@pytest.fixture(scope="module")
def census():
    return page_by_name("msn").features


class TestLearnedDirections:
    def test_predicted_load_falls_from_fmin_to_fmax(self, small_predictor, census):
        table = small_predictor.prediction_table(census, 3.0, 1.0, 50.0)
        assert table[-1].load_time_s < table[0].load_time_s

    def test_predicted_power_rises_from_fmin_to_fmax(self, small_predictor, census):
        table = small_predictor.prediction_table(census, 3.0, 1.0, 50.0)
        assert table[-1].power_w > table[0].power_w

    def test_predicted_ppw_has_an_interior_maximum(self, small_predictor, census):
        table = small_predictor.prediction_table(census, 3.0, 1.0, 50.0)
        ppws = [p.ppw for p in table]
        best = ppws.index(max(ppws))
        assert 0 < best < len(ppws) - 1

    def test_interference_slows_every_candidate(self, small_predictor, census):
        quiet = small_predictor.prediction_table(census, 0.0, 0.0, 50.0)
        noisy = small_predictor.prediction_table(census, 10.0, 1.0, 50.0)
        slower = sum(
            1 for q, n in zip(quiet, noisy) if n.load_time_s > q.load_time_s
        )
        # The learned interference effect points the right way at
        # (nearly) every operating point.
        assert slower >= len(quiet) - 1

    def test_bigger_pages_predict_longer_loads(self, small_predictor):
        small = page_by_name("amazon").features
        large = page_by_name("espn").features
        fast = small_predictor.predict_at(small, 0.0, 0.0, 50.0, 2265.6e6)
        slow = small_predictor.predict_at(large, 0.0, 0.0, 50.0, 2265.6e6)
        assert slow.load_time_s > fast.load_time_s

    def test_candidate_override_is_respected(self, small_models):
        from dataclasses import replace

        predictor = replace(
            small_models.predictor, candidate_freqs_hz=(960e6, 2265.6e6)
        )
        census = page_by_name("msn").features
        table = predictor.prediction_table(census, 0.0, 0.0, 50.0)
        assert [p.freq_hz for p in table] == [960e6, 2265.6e6]
