"""Cross-cutting edge cases and property tests.

Behaviours that don't belong to a single module's main test file:
parser oddities, selector compounds, serialization round-trips over
randomized models, and oracle-selection invariants.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.browser.css import Stylesheet, match_styles, parse_selector
from repro.browser.html import parse_html, tokenize
from repro.core.ppw import FrequencyPrediction, find_fd, find_fe, select_fopt
from repro.models.regression import RegressionModel, ResponseSurface
from repro.workloads.streams import LINE_BYTES, PointerChaseStream, RandomStream


class TestHtmlOddities:
    def test_duplicate_attribute_keeps_the_last_value(self):
        root = parse_html('<a href="/one" href="/two">x</a>')
        assert root.children[0].attributes["href"] == "/two"

    def test_attribute_values_preserve_case(self):
        root = parse_html('<img src="/CaseSensitive.PNG"/>')
        assert root.children[0].attributes["src"] == "/CaseSensitive.PNG"

    def test_entities_pass_through_as_text(self):
        """No entity decoding: the census only counts structure."""
        root = parse_html("<p>a &amp; b</p>")
        assert root.text_content() == "a &amp; b"

    def test_script_with_attributes_is_raw_text(self):
        tokens = tokenize('<script type="module">let x = 1 < 2;</script>')
        assert tokens[0].attributes == {"type": "module"}
        assert "1 < 2" in tokens[1].data

    def test_empty_attribute_value(self):
        root = parse_html('<input value="">')
        assert root.children[0].attributes["value"] == ""

    def test_deeply_nested_document_parses_iteratively(self):
        depth = 500
        markup = "<div>" * depth + "</div>" * depth
        root = parse_html(markup)
        assert len(root.find_all("div")) == depth

    def test_consecutive_text_runs_merge_across_comments(self):
        root = parse_html("<p>a<!-- x -->b</p>")
        assert root.text_content() == "ab"


class TestCssCompounds:
    def test_multi_class_compound(self):
        selector = parse_selector(".a.b")
        root = parse_html('<div class="a b c">x</div><div class="a">y</div>')
        both, only_a = root.find_all("div")
        assert selector.key.matches(both)
        assert not selector.key.matches(only_a)

    def test_tag_id_class_compound_via_match_styles(self):
        markup = '<div id="hero" class="big">x</div><div class="big">y</div>'
        sheet = Stylesheet.from_selectors(["div.big#hero"])
        stats = match_styles(parse_html(markup), sheet)
        assert stats.matches == 1

    def test_rule_order_does_not_change_match_counts(self):
        markup = "<div><p>x</p></div>"
        forward = Stylesheet.from_selectors(["div", "p"])
        backward = Stylesheet.from_selectors(["p", "div"])
        assert (
            match_styles(parse_html(markup), forward).matches
            == match_styles(parse_html(markup), backward).matches
        )


class TestOracleInvariants:
    @st.composite
    def tables(draw):
        n = draw(st.integers(2, 8))
        freqs = sorted(draw(st.lists(
            st.floats(0.3e9, 3e9), min_size=n, max_size=n, unique=True
        )))
        points = []
        load = draw(st.floats(2.0, 8.0))
        for freq in freqs:
            load *= draw(st.floats(0.55, 0.99))  # faster at higher f
            power = 0.8 + draw(st.floats(0.1, 2.0)) * (freq / 1e9) ** 2
            points.append(FrequencyPrediction(freq, load, power))
        return points

    @given(table=tables())
    def test_fd_is_minimal_and_feasible(self, table):
        deadline = 3.0
        fd = find_fd(table, deadline)
        if fd is None:
            assert all(p.load_time_s > deadline for p in table)
        else:
            assert fd.load_time_s <= deadline
            for point in table:
                if point.freq_hz < fd.freq_hz:
                    assert point.load_time_s > deadline

    @given(table=tables())
    def test_fopt_dominates_every_feasible_point(self, table):
        deadline = 3.0
        choice = select_fopt(table, deadline)
        feasible = [p for p in table if p.load_time_s <= deadline]
        for point in feasible:
            assert choice.ppw >= point.ppw - 1e-12

    @given(table=tables())
    def test_fe_is_global_ppw_max(self, table):
        fe = find_fe(table)
        assert fe.ppw == max(p.ppw for p in table)


class TestSerializationProperty:
    @given(seed=st.integers(0, 10_000))
    def test_regression_coefficients_round_trip_via_json_types(self, seed):
        from repro.models.serialization import (
            _regression_from_dict,
            _regression_to_dict,
        )

        rng = np.random.default_rng(seed)
        inputs = rng.uniform(-1, 1, size=(30, 4))
        targets = rng.uniform(0.5, 2.0, size=30)
        model = RegressionModel.fit(inputs, targets, ResponseSurface.INTERACTION)
        rebuilt = _regression_from_dict(_regression_to_dict(model))
        probe = rng.uniform(-1, 1, size=(3, 4))
        assert np.allclose(model.predict(probe), rebuilt.predict(probe))


class TestStreamProperties:
    @given(
        lines=st.integers(2, 256),
        seed=st.integers(0, 100),
        count=st.integers(1, 300),
    )
    def test_random_stream_stays_aligned_and_bounded(self, lines, seed, count):
        stream = RandomStream(
            working_set_bytes=lines * LINE_BYTES, seed=seed, base=1 << 16
        )
        for address in stream.take(count):
            assert address % LINE_BYTES == 0
            assert (1 << 16) <= address < (1 << 16) + lines * LINE_BYTES

    @given(lines=st.integers(2, 128), seed=st.integers(0, 50))
    def test_pointer_chase_cycles_exactly(self, lines, seed):
        stream = PointerChaseStream(
            working_set_bytes=lines * LINE_BYTES, seed=seed
        )
        first = stream.take(lines)
        second = stream.take(2 * lines)[lines:]
        assert first == second  # the permutation repeats
