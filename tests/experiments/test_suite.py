"""Workload-suite construction tests (Section IV-B)."""

import pytest

from repro.browser.pages import page_names
from repro.experiments.suite import (
    NEUTRAL_PAGES,
    all_combos,
    combo_for,
    inclusive_combos,
    neutral_combos,
    training_pages,
)
from repro.workloads.classification import MemoryIntensity
from repro.workloads.kernels import kernel_by_name


class TestMatrixShape:
    def test_fifty_four_combinations(self):
        assert len(all_combos()) == 54

    def test_split_matches_the_paper(self):
        assert len(inclusive_combos()) == 42
        assert len(neutral_combos()) == 12

    def test_fourteen_training_pages(self):
        assert len(training_pages()) == 14
        assert set(training_pages()) | set(NEUTRAL_PAGES) == set(page_names())

    def test_neutral_pages_span_both_complexity_classes(self):
        from repro.browser.pages import HIGH_INTENSITY_PAGES, LOW_INTENSITY_PAGES

        assert set(NEUTRAL_PAGES) & set(LOW_INTENSITY_PAGES)
        assert set(NEUTRAL_PAGES) & set(HIGH_INTENSITY_PAGES)

    def test_every_page_gets_one_combo_per_intensity(self):
        for page in page_names():
            intensities = [
                combo.intensity for combo in all_combos()
                if combo.page_name == page
            ]
            assert sorted(i.value for i in intensities) == [
                "high", "low", "medium",
            ]

    def test_every_kernel_appears_in_the_suite(self):
        used = {combo.kernel_name for combo in all_combos()}
        from repro.workloads.kernels import all_kernels

        assert used == {kernel.name for kernel in all_kernels()}

    def test_kernel_matches_declared_intensity(self):
        for combo in all_combos():
            assert (
                kernel_by_name(combo.kernel_name).expected_intensity
                is combo.intensity
            )

    def test_combo_lookup(self):
        combo = combo_for("reddit", MemoryIntensity.HIGH)
        assert combo.page_name == "reddit"
        assert combo.intensity is MemoryIntensity.HIGH
        with pytest.raises(KeyError):
            combo_for("geocities", MemoryIntensity.LOW)

    def test_labels_are_unique(self):
        labels = [combo.label for combo in all_combos()]
        assert len(set(labels)) == 54

    def test_inclusive_flag_matches_training_pages(self):
        train = set(training_pages())
        for combo in all_combos():
            assert combo.webpage_inclusive == (combo.page_name in train)
