"""Battery-life translation tests (pure arithmetic on stub summaries)."""

import pytest

from repro.core.ppw import FrequencyPrediction
from repro.experiments.battery import (
    UsageProfile,
    battery_life,
    idle_power_w,
)
from repro.experiments.harness import (
    ComboEvaluation,
    HarnessConfig,
    OraclePoints,
    RunSummary,
)
from repro.experiments.suite import combo_for
from repro.workloads.classification import MemoryIntensity


def _summary(governor, load, power):
    return RunSummary(
        governor=governor,
        load_time_s=load,
        avg_power_w=power,
        energy_j=load * power,
        duration_s=load,
        switch_count=0,
        switch_stall_s=0.0,
        final_temperature_c=50.0,
    )


def _evaluation(loads_powers):
    """A stub evaluation with given per-governor (load, power)."""
    combo = combo_for("amazon", MemoryIntensity.LOW)
    sweep = (FrequencyPrediction(1e9, 1.0, 2.0),)
    return ComboEvaluation(
        combo=combo,
        sweep=sweep,
        oracle=OraclePoints(fd_hz=1e9, fe_hz=1e9, fopt_hz=1e9),
        runs={
            governor: _summary(governor, load, power)
            for governor, (load, power) in loads_powers.items()
        },
    )


class TestUsageProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            UsageProfile(loads_per_hour=-1)
        with pytest.raises(ValueError):
            UsageProfile(battery_wh=0.0)


class TestIdlePower:
    def test_idle_is_well_below_active_power(self):
        config = HarnessConfig()
        idle = idle_power_w(config, display_on=True)
        assert 0.5 < idle < 2.5

    def test_display_off_saves_power(self):
        config = HarnessConfig()
        assert idle_power_w(config, False) < idle_power_w(config, True)


class TestBatteryLife:
    def _evaluations(self):
        return [
            _evaluation(
                {
                    "interactive": (1.0, 4.0),
                    "DORA": (1.4, 2.2),  # slower but far cheaper
                }
            )
        ]

    def test_cheaper_loads_extend_battery_life(self):
        result = battery_life(
            self._evaluations(),
            governors=("interactive", "DORA"),
            profile=UsageProfile(loads_per_hour=600, battery_wh=8.7),
        )
        assert result.extension_vs("DORA", "interactive") > 1.0

    def test_idle_dominated_profile_shrinks_the_gap(self):
        busy = battery_life(
            self._evaluations(),
            governors=("interactive", "DORA"),
            profile=UsageProfile(loads_per_hour=1200),
        )
        light = battery_life(
            self._evaluations(),
            governors=("interactive", "DORA"),
            profile=UsageProfile(loads_per_hour=30),
        )
        assert busy.extension_vs("DORA", "interactive") > (
            light.extension_vs("DORA", "interactive")
        )

    def test_battery_scale_is_sane(self):
        result = battery_life(
            self._evaluations(),
            governors=("interactive",),
            profile=UsageProfile(loads_per_hour=120, battery_wh=8.7),
        )
        # A phone browsing on-and-off should last hours, not minutes
        # or weeks.
        assert 2.0 < result.estimates["interactive"].hours < 24.0

    def test_overcommitted_hour_rejected(self):
        with pytest.raises(ValueError, match="exceeds an hour"):
            battery_life(
                self._evaluations(),
                governors=("interactive",),
                profile=UsageProfile(loads_per_hour=4000),
            )

    def test_render_orders_by_life_and_shows_gain(self):
        result = battery_life(
            self._evaluations(),
            governors=("interactive", "DORA"),
        )
        text = result.render()
        assert "battery life" in text
        assert "interactive" in text and "DORA" in text
