"""Multi-process stress of the on-disk cache.

Eight processes hammer one memoized key simultaneously.  The atomic
publish protocol (pid-unique temp file + ``os.replace``) must leave
exactly one valid artifact and no partial files, and every process
must read back the same value.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.experiments import cache
from tests.runtime.jobhelpers import memoized_build


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path


def test_eight_processes_hammering_one_key(cache_dir):
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=8) as pool:
        results = pool.starmap(
            memoized_build,
            [(str(cache_dir), "contended", 50_000) for _ in range(8)],
        )
    expected = {"key": "contended", "payload": list(range(50_000))}
    assert all(result == expected for result in results)
    artifacts = list(cache_dir.glob("stress-*.pkl"))
    assert len(artifacts) == 1, "racing writers must converge on one file"
    assert not list(cache_dir.glob("*.tmp")), "no partial files left behind"


def test_store_uses_pid_unique_temp_name(cache_dir):
    # Two processes writing the same key must not collide on the temp
    # path; the pid suffix guarantees distinct intermediate files.
    cache.store("unit", ("k",), {"v": 1})
    tmp_names = [p.name for p in cache_dir.glob("*.tmp")]
    assert tmp_names == []  # publish is atomic: nothing lingers
    path = cache.artifact_path("unit", ("k",))
    assert path.exists()
    hit, value = cache.peek("unit", ("k",))
    assert hit and value == {"v": 1}


def test_clear_removes_orphaned_temp_files(cache_dir):
    cache.store("unit", ("k",), {"v": 1})
    orphan = cache_dir / f"unit-deadbeef.pkl.{os.getpid()}.tmp"
    orphan.write_bytes(b"half-written garbage")
    cache.clear()
    assert not list(cache_dir.glob("*.pkl"))
    assert not list(cache_dir.glob("*.tmp"))


def test_corrupt_artifact_is_rebuilt(cache_dir):
    calls = []

    def build():
        calls.append(1)
        return "fresh"

    assert cache.memoized("unit", ("corrupt",), build) == "fresh"
    path = cache.artifact_path("unit", ("corrupt",))
    path.write_bytes(b"not a pickle")
    assert cache.memoized("unit", ("corrupt",), build) == "fresh"
    assert len(calls) == 2
