"""The calibration fingerprint: constants cannot drift without a tag bump.

``test_fingerprint_matches_pin`` is the actual guard: it fails on any
change to a model-affecting constant that does not also re-pin
``CALIBRATION_FINGERPRINT`` (which by policy happens together with a
``CALIBRATION_TAG`` bump, see docs/CALIBRATION.md).  The monkeypatch
tests demonstrate the mechanism the acceptance criteria ask for: a
changed constant with an unchanged tag is detected.
"""

from repro.api import (
    CALIBRATION_FINGERPRINT,
    CALIBRATION_TAG,
    model_fingerprint,
    verify_calibration,
)
from repro.experiments.fingerprint import fingerprint_payload


def test_fingerprint_matches_pin():
    ok, current, pinned = verify_calibration()
    assert ok, (
        f"model constants changed: fingerprint {current} != pinned {pinned}. "
        "Bump CALIBRATION_TAG and re-pin CALIBRATION_FINGERPRINT in "
        "src/repro/experiments/cache.py in the same commit."
    )


def test_fingerprint_is_stable_across_calls():
    assert model_fingerprint() == model_fingerprint()


def test_api_exports_calibration_identity():
    """Tools read the tag through repro.api, not the private module."""
    from repro.experiments import cache

    assert CALIBRATION_TAG == cache.CALIBRATION_TAG
    assert CALIBRATION_FINGERPRINT == cache.CALIBRATION_FINGERPRINT


def test_changed_leakage_constant_without_tag_bump_is_detected(monkeypatch):
    """Editing the ground-truth physics flips the guard (tag unchanged)."""
    from repro.soc import leakage
    from repro.soc.leakage import LeakageParameters

    original = leakage.nexus5_leakage_parameters()
    tweaked = LeakageParameters(
        k1=original.k1 * 1.01,
        k2=original.k2,
        alpha=original.alpha,
        beta=original.beta,
        gamma=original.gamma,
        delta=original.delta,
    )
    monkeypatch.setattr(
        leakage, "nexus5_leakage_parameters", lambda: tweaked
    )
    ok, current, pinned = verify_calibration()
    assert not ok
    assert current != pinned
    # The tag did NOT change -- exactly the silent-poisoning scenario
    # the fingerprint exists to catch.
    from repro.experiments import cache

    assert cache.CALIBRATION_TAG == CALIBRATION_TAG


def test_changed_prediction_floor_is_detected(monkeypatch):
    from repro.models import performance_model

    monkeypatch.setattr(performance_model, "MIN_PREDICTED_LOAD_TIME_S", 0.06)
    ok, _, _ = verify_calibration()
    assert not ok


def test_changed_dvfs_table_is_detected(monkeypatch):
    import dataclasses

    from repro.soc import specs

    spec = specs.nexus5_spec()
    lowered = dataclasses.replace(
        spec,
        dvfs_table=tuple(
            dataclasses.replace(state, voltage_v=state.voltage_v - 0.01)
            for state in spec.dvfs_table
        ),
    )
    monkeypatch.setattr(specs, "nexus5_spec", lambda: lowered)
    ok, _, _ = verify_calibration()
    assert not ok


def test_payload_covers_the_documented_constant_families():
    payload = fingerprint_payload()
    assert {
        "leakage",
        "kelvin_offset",
        "table_i",
        "floors",
        "platforms",
        "power_model",
        "thermal_model",
        "training_defaults",
    } <= set(payload)
    # Both platforms, each carrying its DVFS table and piecewise knots.
    assert len(payload["platforms"]) == 2
    for platform in payload["platforms"]:
        assert platform["dvfs"]
        assert platform["piecewise_knots"]
