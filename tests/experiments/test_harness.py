"""Harness tests: governor factory, oracle extraction, run summaries.

These tests disable the artifact cache so they exercise the real code
paths deterministically.
"""

import pytest

from repro.core.ppw import FrequencyPrediction
from repro.experiments.harness import (
    GOVERNOR_NAMES,
    HarnessConfig,
    RunSummary,
    make_governor,
    oracle_points,
    run_kernel_alone,
    run_workload,
    with_ambient,
)
from repro.soc.thermal import low_ambient


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


class TestGovernorFactory:
    def test_plain_governors_need_no_models(self):
        config = HarnessConfig()
        for name in ("interactive", "performance", "powersave"):
            governor = make_governor(name, None, config)
            assert governor.name == name

    def test_model_based_governors_require_a_predictor(self):
        config = HarnessConfig()
        for name in ("DL", "EE", "DORA", "DORA_no_lkg"):
            with pytest.raises(ValueError):
                make_governor(name, None, config)

    def test_model_based_governors_built_with_predictor(self, small_predictor):
        config = HarnessConfig()
        for name in ("DL", "EE", "DORA", "DORA_no_lkg"):
            governor = make_governor(name, small_predictor, config)
            assert governor.name == name

    def test_dora_interval_comes_from_config(self, small_predictor):
        config = HarnessConfig(dora_interval_s=0.25)
        governor = make_governor("DORA", small_predictor, config)
        assert governor.interval_s == 0.25

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_governor("turbo", None, HarnessConfig())

    def test_factory_covers_the_published_names(self):
        assert set(GOVERNOR_NAMES) == {
            "interactive", "ondemand", "performance", "powersave",
            "DL", "EE", "DORA", "DORA_no_lkg",
        }


class TestOraclePoints:
    def _sweep(self):
        return [
            FrequencyPrediction(0.8e9, 3.5, 1.5),
            FrequencyPrediction(1.5e9, 2.2, 2.1),
            FrequencyPrediction(2.3e9, 1.6, 3.9),
        ]

    def test_oracle_extraction(self):
        oracle = oracle_points(self._sweep(), deadline_s=3.0)
        assert oracle.fd_hz == pytest.approx(1.5e9)
        assert oracle.fe_hz == pytest.approx(1.5e9)
        assert oracle.fopt_hz == pytest.approx(1.5e9)

    def test_infeasible_oracle(self):
        oracle = oracle_points(self._sweep(), deadline_s=1.0)
        assert oracle.fd_hz is None
        assert oracle.fopt_hz == pytest.approx(2.3e9)


class TestRunWorkload:
    def test_fixed_frequency_run(self, fast_config):
        governor = make_governor("performance", None, fast_config)
        result = run_workload("amazon", None, governor, fast_config)
        assert result.load_time_s is not None
        assert result.governor_name == "performance"

    def test_deadline_override_reaches_the_context(self, small_predictor, fast_config):
        governor = make_governor("DORA", small_predictor, fast_config)
        tight = run_workload(
            "espn", "bfs", governor, fast_config, deadline_s=1.0
        )
        governor = make_governor("DORA", small_predictor, fast_config)
        loose = run_workload(
            "espn", "bfs", governor, fast_config, deadline_s=30.0
        )
        assert tight.decisions.frequencies_hz[-1] >= (
            loose.decisions.frequencies_hz[-1]
        )

    def test_kernel_alone_is_duration_bounded(self, fast_config):
        result = run_kernel_alone("srad", duration_s=0.3, config=fast_config)
        assert result.load_time_s is None
        assert result.duration_s == pytest.approx(0.3, abs=0.02)

    def test_with_ambient_swaps_the_scenario(self, fast_config):
        cold = with_ambient(fast_config, low_ambient())
        assert cold.device.ambient.name == "low-ambient"
        assert fast_config.device.ambient.name == "room"


class TestRunSummary:
    def test_ppw_and_deadline(self):
        summary = RunSummary(
            governor="x", load_time_s=2.0, avg_power_w=2.5, energy_j=5.0,
            duration_s=2.0, switch_count=0, switch_stall_s=0.0,
            final_temperature_c=50.0,
        )
        assert summary.ppw == pytest.approx(0.2)
        assert summary.meets(3.0)
        assert not summary.meets(1.9)

    def test_timeout_summary(self):
        summary = RunSummary(
            governor="x", load_time_s=None, avg_power_w=2.5, energy_j=5.0,
            duration_s=2.0, switch_count=0, switch_stall_s=0.0,
            final_temperature_c=50.0,
        )
        assert summary.ppw == 0.0
        assert not summary.meets(60.0)
