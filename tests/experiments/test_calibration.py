"""Calibration-report structure tests (logic only; the full measured
characterization runs via the CLI / benchmarks against cached sweeps)."""


from repro.experiments.calibration import CalibrationReport, Property


class TestReport:
    def test_all_passing_report_passes(self):
        report = CalibrationReport(
            properties=[
                Property("a", True, "ok"),
                Property("b", True, "ok"),
            ]
        )
        assert report.passed

    def test_single_failure_fails_the_report(self):
        report = CalibrationReport(
            properties=[
                Property("a", True, "ok"),
                Property("b", False, "broken"),
            ]
        )
        assert not report.passed

    def test_render_marks_pass_and_fail(self):
        report = CalibrationReport(
            properties=[
                Property("good", True, "fine"),
                Property("bad", False, "oops"),
            ]
        )
        text = report.render()
        assert "PASS" in text and "FAIL" in text
        assert "oops" in text

    def test_empty_report_passes_vacuously(self):
        assert CalibrationReport(properties=[]).passed
