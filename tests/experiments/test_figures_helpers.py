"""Unit tests for the figure result objects (no simulation needed)."""

import pytest

from repro.core.ppw import FrequencyPrediction
from repro.experiments.figures import (
    DecisionIntervalResult,
    ExtendedComparisonResult,
    Fig01Result,
    Fig03Case,
    Fig06Result,
    Fig08Result,
    Fig08Row,
    Fig10Result,
    Fig11Result,
    HeadlineResult,
    InterferenceAblationResult,
    OverheadResult,
    PiecewiseAblationResult,
    QosMarginResult,
    Tab03Result,
)

GOVS = ("interactive", "performance", "fD", "fE", "DORA", "DL", "EE")


def _fig08(values):
    return Fig08Result(
        rows=[
            Fig08Row(
                label=f"w{i}",
                regime="fE>=fD" if i % 2 else "fE<fD",
                normalized={g: v for g in GOVS},
            )
            for i, v in enumerate(values)
        ]
    )


class TestFig08Helpers:
    def test_series_extracts_one_governor(self):
        result = _fig08([1.0, 1.1, 1.2])
        assert result.series("DORA") == [1.0, 1.1, 1.2]

    def test_tracking_error_of_identical_series_is_zero(self):
        result = _fig08([1.0, 1.1])
        assert result.tracking_error("DORA", "EE") == 0.0

    def test_tracking_error_measures_mean_gap(self):
        rows = [
            Fig08Row(
                label="a",
                regime="fE>=fD",
                normalized={**{g: 1.0 for g in GOVS}, "EE": 1.2},
            ),
            Fig08Row(
                label="b",
                regime="fE>=fD",
                normalized={**{g: 1.0 for g in GOVS}, "EE": 1.0},
            ),
        ]
        result = Fig08Result(rows=rows)
        assert result.tracking_error("DORA", "EE") == pytest.approx(0.1)

    def test_render_has_a_row_per_workload(self):
        text = _fig08([1.0, 1.1, 1.2]).render()
        assert len(text.splitlines()) == 2 + 3


class TestFig03Case:
    def _case(self, fd, fe):
        sweep = [FrequencyPrediction(1e9, 2.0, 2.0)]
        return Fig03Case(
            page_name="p", kernel_name="k", sweep=sweep,
            fd_hz=fd, fe_hz=fe, fopt_hz=fe, fmax_ppw_loss=0.1,
        )

    def test_regimes(self):
        assert self._case(2e9, 1.5e9).regime == "fD>fE"
        assert self._case(1e9, 1.5e9).regime == "fD<=fE"
        assert self._case(None, 1.5e9).regime == "fD<=fE"


class TestTab03:
    def test_misclassification_detection(self):
        result = Tab03Result(
            pages={"fast": (1.0, "low"), "slow": (2.5, "high")},
            kernels={},
        )
        assert result.misclassified_pages(("fast",)) == []
        assert result.misclassified_pages(("slow",)) == ["fast", "slow"]


class TestRenderSmoke:
    """Every result type renders to non-empty text."""

    def test_fig01(self):
        text = Fig01Result(
            page_name="p", rows={1e9: (1.0, 1.1, 1.5, [1.1])},
            deadlines_s=(2.0,),
        ).render()
        assert "1.00" in text

    def test_fig06(self):
        sweep = [FrequencyPrediction(1e9, 2.0, 2.0)]
        text = Fig06Result(
            page_name="p", kernel_name="k", sweep=sweep, fopt_hz=1e9,
            below=None, above=(0.1, -0.1), error_margin=0.05,
            tolerates_measured_errors=True, dora_ppw_regret=0.01,
        ).render()
        assert "fopt" in text and "--" in text

    def test_fig10(self):
        text = Fig10Result(
            exhibit_label="a+b", dora_ppw=0.5, no_lkg_ppw=0.45,
            dora_freqs_hz=(1.5e9,), no_lkg_freqs_hz=(1.7e9,),
            power_curves={"warm": [FrequencyPrediction(1e9, 2.0, 2.0)]},
            fe_by_ambient={"warm": 1e9},
        ).render()
        assert "+11.1%" in text  # 0.5 / 0.45

    def test_fig11(self):
        text = Fig11Result(
            page_name="p", kernel_name="k",
            choices={3.0: (2e9, 2.5), 6.0: (1e9, None)},
        ).render()
        assert "timeout" in text

    def test_headline(self):
        text = HeadlineResult(
            mean_improvement=1.15, max_improvement=1.25,
            min_improvement=1.0, inclusive_improvement=1.16,
            neutral_improvement=1.12, time_accuracy=0.97,
            power_accuracy=0.96, feasible_fraction=0.9,
            dora_meets_when_feasible=1.0,
        ).render()
        assert "+15.0%" in text and "97.0%" in text

    def test_overhead(self):
        text = OverheadResult(
            mean_switches_per_load=1.5,
            max_switch_stall_fraction=0.001,
            mean_switch_stall_fraction=0.0005,
            mean_decision_cost_fraction=0.007,
        ).render()
        assert "1.5" in text

    def test_decision_interval(self):
        text = DecisionIntervalResult(
            by_interval={0.05: (1.15, 0, 30.0), 0.1: (1.15, 0, 15.0)}
        ).render()
        assert "50 ms" in text

    def test_interference_ablation(self):
        text = InterferenceAblationResult(
            blind_miss_fraction=0.3, aware_miss_fraction=0.05,
            blind_bound_miss_fraction=0.6, aware_bound_miss_fraction=0.1,
            blind_mean_ppw=1.1, aware_mean_ppw=1.15,
        ).render()
        assert "30.0%" in text

    def test_piecewise_ablation(self):
        text = PiecewiseAblationResult(
            piecewise_time_error=0.03, global_time_error=0.12,
            piecewise_power_error=0.03, global_power_error=0.07,
        ).render()
        assert "12.0%" in text

    def test_extended_comparison(self):
        text = ExtendedComparisonResult(
            mean_ppw={"DORA": 1.15, "OfflineOpt": 1.16},
            misses={"DORA": 5, "OfflineOpt": 5},
            dora_vs_offline_gap=0.01,
        ).render()
        assert "OfflineOpt" in text

    def test_qos_margin(self):
        text = QosMarginResult(
            by_margin={0.0: (1.16, 2), 0.05: (1.15, 0)},
            feasible_count=49,
        ).render()
        assert "5%" in text
