"""Artifact cache and text-reporting tests."""

import pytest

from repro.experiments import cache as artifact_cache
from repro.experiments.reporting import banner, format_table, frac, ghz, pct, seconds


class TestArtifactCache:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)

    def test_builder_runs_once(self):
        calls = []

        def build():
            calls.append(1)
            return {"answer": 42}

        first = artifact_cache.memoized("unit", ("k",), build)
        second = artifact_cache.memoized("unit", ("k",), build)
        assert first == second == {"answer": 42}
        assert len(calls) == 1

    def test_different_keys_are_distinct(self):
        a = artifact_cache.memoized("unit", ("a",), lambda: 1)
        b = artifact_cache.memoized("unit", ("b",), lambda: 2)
        assert (a, b) == (1, 2)

    def test_no_cache_env_disables_persistence(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = []
        for _ in range(2):
            artifact_cache.memoized("unit", ("k2",), lambda: calls.append(1))
        assert len(calls) == 2

    def test_corrupt_artifact_is_rebuilt(self):
        artifact_cache.memoized("unit", ("k3",), lambda: "good")
        (pickle_file,) = list(artifact_cache.cache_dir().glob("unit-*.pkl"))
        pickle_file.write_bytes(b"not a pickle")
        rebuilt = artifact_cache.memoized("unit", ("k3",), lambda: "rebuilt")
        assert rebuilt == "rebuilt"

    def test_clear_removes_artifacts(self):
        artifact_cache.memoized("unit", ("k4",), lambda: 1)
        assert artifact_cache.clear() >= 1
        assert list(artifact_cache.cache_dir().glob("*.pkl")) == []


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(("name", "value"), [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_pct_is_signed_change(self):
        assert pct(1.16) == "+16.0%"
        assert pct(0.98) == "-2.0%"

    def test_frac(self):
        assert frac(0.215) == "21.5%"
        assert frac(0.5, digits=0) == "50%"

    def test_ghz(self):
        assert ghz(1497.6e6) == "1.50"
        assert ghz(None) == "--"

    def test_seconds(self):
        assert seconds(1.234) == "1.23s"
        assert seconds(None) == "timeout"

    def test_banner_contains_title(self):
        assert "Fig. 7" in banner("Fig. 7")
