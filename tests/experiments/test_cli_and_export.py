"""CLI and CSV-export tests.

CLI commands that need the full trained bundle are exercised through
the cheap subcommands (``list``, parser wiring); the figure/export
paths are tested against hand-built result objects so no campaign is
required.
"""

import csv

import pytest

from repro.cli import build_parser, main
from repro.experiments import export
from repro.experiments.figures import Fig01Result, Fig07Result, Fig08Result, Fig08Row, Fig11Result


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["run", "reddit"],
            ["sweep", "reddit", "--kernel", "bfs"],
            ["figures", "--only", "fig07"],
            ["train", "--output", "x.json"],
            ["classify"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--only", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "msn"])
        assert args.governor == "DORA"
        assert args.deadline == 3.0
        assert args.kernel is None


class TestListCommand:
    def test_list_prints_pages_kernels_governors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out
        assert "needleman-wunsch" in out
        assert "DORA" in out
        assert "interactive" in out


def _fig01():
    return Fig01Result(
        page_name="reddit",
        rows={
            0.7e9: (2.0, 2.1, 2.6, [2.1, 2.6]),
            2.2e9: (0.6, 0.65, 0.75, [0.65, 0.75]),
        },
        deadlines_s=(2.0, 3.0),
    )


def _fig07():
    return Fig07Result(
        groups={
            "all": {"DORA": 1.15, "EE": 1.2},
            "inclusive": {"DORA": 1.16, "EE": 1.21},
            "neutral": {"DORA": 1.12, "EE": 1.18},
        },
        load_times={"DORA": [1.0, 2.0, 4.0], "EE": [1.5, 2.5, 6.0]},
        deadline_s=3.0,
    )


class TestExport:
    def test_fig01_csv(self, tmp_path):
        path = export.export_fig01(_fig01(), tmp_path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == [
            "freq_ghz", "solo_load_s", "min_corun_load_s", "max_corun_load_s",
        ]
        assert len(rows) == 3
        assert float(rows[1][0]) == pytest.approx(0.7)

    def test_fig07_csvs(self, tmp_path):
        result = _fig07()
        bars = export.export_fig07(result, tmp_path)
        cdf = export.export_fig07_cdf(result, tmp_path)
        bar_rows = list(csv.reader(bars.open()))
        assert ("all", "DORA") in {(r[0], r[1]) for r in bar_rows[1:]}
        cdf_rows = list(csv.reader(cdf.open()))
        assert cdf_rows[-1][2] == "1.0"

    def test_fig08_csv(self, tmp_path):
        result = Fig08Result(
            rows=[
                Fig08Row(
                    label="a+b",
                    regime="fE>=fD",
                    normalized={
                        g: 1.0
                        for g in (
                            "interactive", "performance", "fD", "fE",
                            "DORA", "DL", "EE",
                        )
                    },
                )
            ]
        )
        path = export.export_fig08(result, tmp_path)
        rows = list(csv.reader(path.open()))
        assert rows[1][1] == "a+b"

    def test_fig11_csv(self, tmp_path):
        result = Fig11Result(
            page_name="espn",
            kernel_name="nw",
            choices={3.0: (2.2656e9, 2.7), 6.0: (1.1904e9, None)},
        )
        path = export.export_fig11(result, tmp_path)
        rows = list(csv.reader(path.open()))
        assert rows[1] == ["3.0", "2.2656", "2.7"]
        assert rows[2][2] == ""


class TestFig07Helpers:
    def test_cdf_and_miss_fraction(self):
        result = _fig07()
        cdf = result.cdf("DORA")
        assert cdf[-1] == (4.0, 1.0)
        assert result.deadline_miss_fraction("DORA") == pytest.approx(1 / 3)
        assert result.deadline_miss_fraction("EE") == pytest.approx(1 / 3)
