"""Property tests: every governor's decision stays in the DVFS domain."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.dora import DoraGovernor
from repro.core.governors import (
    DeadlineGovernor,
    EnergyEfficientGovernor,
    InteractiveGovernor,
    OndemandGovernor,
)
from repro.soc.specs import nexus5_spec
from tests.core.test_governors import StubPredictor, _context, _sample

SPEC = nexus5_spec()
FREQS = SPEC.frequencies_hz


class TestDecisionDomain:
    @given(
        busy=st.floats(0.0, 1.0),
        freq_index=st.integers(0, 13),
    )
    def test_interactive_always_returns_a_table_frequency(self, busy, freq_index):
        governor = InteractiveGovernor()
        governor.reset()
        sample = _sample(FREQS[freq_index], busy=busy)
        target = governor.decide(sample, _context(SPEC))
        assert target in FREQS

    @given(
        busy=st.floats(0.0, 1.0),
        freq_index=st.integers(0, 13),
    )
    def test_ondemand_always_returns_a_table_frequency(self, busy, freq_index):
        governor = OndemandGovernor()
        sample = _sample(FREQS[freq_index], busy=busy)
        assert governor.decide(sample, _context(SPEC)) in FREQS

    @given(
        mpki=st.floats(0.0, 30.0),
        deadline=st.floats(0.5, 10.0),
    )
    def test_model_governors_return_stub_candidates(self, mpki, deadline):
        stub = StubPredictor()
        candidates = {f * 1e9 for f in stub.freqs_ghz}
        sample = _sample(2265.6e6, mpki_corunner=mpki)
        for governor in (
            DoraGovernor(predictor=stub),
            DeadlineGovernor(predictor=stub),
            EnergyEfficientGovernor(predictor=stub),
        ):
            target = governor.decide(sample, _context(SPEC, deadline=deadline))
            assert target in candidates or target == SPEC.max_state.freq_hz

    @given(
        deadline_a=st.floats(0.5, 10.0),
        deadline_b=st.floats(0.5, 10.0),
    )
    def test_dora_choice_is_monotone_in_the_deadline(self, deadline_a, deadline_b):
        """A tighter deadline can only raise (never lower) fopt."""
        tight, loose = sorted((deadline_a, deadline_b))
        sample = _sample(2265.6e6)
        choice_tight = DoraGovernor(predictor=StubPredictor()).decide(
            sample, _context(SPEC, deadline=tight)
        )
        choice_loose = DoraGovernor(predictor=StubPredictor()).decide(
            sample, _context(SPEC, deadline=loose)
        )
        assert choice_tight >= choice_loose

    @given(mpki=st.floats(0.0, 30.0))
    def test_dora_interference_monotonicity(self, mpki):
        """More observed interference never lowers DORA's choice when
        the deadline binds (the stub's load grows with MPKI)."""
        governor = DoraGovernor(predictor=StubPredictor())
        context = _context(SPEC, deadline=2.0)
        quiet = governor.decide(_sample(2265.6e6, mpki_corunner=0.0), context)
        noisy = governor.decide(_sample(2265.6e6, mpki_corunner=mpki), context)
        assert noisy >= quiet
