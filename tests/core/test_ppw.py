"""PPW arithmetic tests (Equations 1 and 6, Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ppw import (
    FrequencyPrediction,
    find_fd,
    find_fe,
    fopt_error_margin,
    fopt_tolerates_errors,
    ppw,
    ppw_under_error,
    select_fopt,
    select_fopt_rows,
)


def _point(freq_ghz, load, power):
    return FrequencyPrediction(
        freq_hz=freq_ghz * 1e9, load_time_s=load, power_w=power
    )


#: A table with an interior PPW peak at 1.5 GHz.
#: PPW: 0.8->0.208, 1.2->0.245, 1.5->0.247, 1.9->0.217, 2.3->0.178
TABLE = [
    _point(0.8, 3.2, 1.5),
    _point(1.2, 2.4, 1.7),
    _point(1.5, 2.0, 2.025),
    _point(1.9, 1.7, 2.7),
    _point(2.3, 1.5, 3.75),
]


class TestBasics:
    def test_ppw_definition(self):
        assert ppw(2.0, 2.5) == pytest.approx(0.2)

    def test_ppw_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ppw(0.0, 1.0)
        with pytest.raises(ValueError):
            ppw(1.0, -1.0)

    def test_prediction_validation(self):
        with pytest.raises(ValueError):
            _point(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            _point(1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            _point(1.0, 1.0, 0.0)

    def test_prediction_ppw_property(self):
        assert _point(1.0, 2.0, 0.5).ppw == pytest.approx(1.0)


class TestOraclePoints:
    def test_fe_is_the_ppw_max(self):
        assert find_fe(TABLE).freq_hz == pytest.approx(1.5e9)

    def test_fd_is_the_lowest_deadline_meeting_frequency(self):
        assert find_fd(TABLE, 3.0).freq_hz == pytest.approx(1.2e9)
        assert find_fd(TABLE, 2.0).freq_hz == pytest.approx(1.5e9)

    def test_fd_none_when_infeasible(self):
        assert find_fd(TABLE, 1.0) is None

    def test_fd_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            find_fd(TABLE, 0.0)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            find_fe([])


class TestEquationOne:
    """fopt = fE when fD <= fE, else fD."""

    def test_fe_wins_when_it_meets_the_deadline(self):
        # Deadline 3.0: fD = 1.2 <= fE = 1.5 -> fopt = fE.
        assert select_fopt(TABLE, 3.0).freq_hz == pytest.approx(1.5e9)

    def test_fd_wins_when_fe_misses_the_deadline(self):
        # Deadline 1.6: only 2.3 GHz meets it -> fopt = fD = 2.3.
        assert select_fopt(TABLE, 1.6).freq_hz == pytest.approx(2.3e9)

    def test_infeasible_falls_back_to_fmax(self):
        assert select_fopt(TABLE, 0.5).freq_hz == pytest.approx(2.3e9)

    def test_algorithm_one_equals_equation_one(self):
        """Argmax-over-feasible equals the fE/fD case split."""
        for deadline in (0.8, 1.6, 1.8, 2.1, 2.5, 3.5, 10.0):
            via_algorithm = select_fopt(TABLE, deadline)
            fd = find_fd(TABLE, deadline)
            fe = find_fe(TABLE)
            if fd is None:
                expected = max(TABLE, key=lambda p: p.freq_hz)
            elif fd.freq_hz <= fe.freq_hz and fe.load_time_s <= deadline:
                expected = fe
            else:
                # fE misses: the best feasible point; with a unimodal
                # PPW curve that is fD.
                expected = fd
            assert via_algorithm.freq_hz == expected.freq_hz, deadline

    @given(deadline=st.floats(0.3, 20.0))
    def test_selected_point_is_feasible_or_fmax(self, deadline):
        choice = select_fopt(TABLE, deadline)
        feasible = [p for p in TABLE if p.load_time_s <= deadline]
        if feasible:
            assert choice.load_time_s <= deadline
            assert all(choice.ppw >= p.ppw for p in feasible)
        else:
            assert choice.freq_hz == max(p.freq_hz for p in TABLE)


class TestSelectFoptRows:
    """The vectorized decision rule the scalar select_fopt delegates to."""

    def _table_arrays(self):
        load = np.array([[p.load_time_s for p in TABLE]])
        power = np.array([[p.power_w for p in TABLE]])
        return load, power

    def test_single_row_matches_scalar(self):
        load, power = self._table_arrays()
        for deadline in (0.5, 1.6, 2.1, 3.0, 10.0):
            [index] = select_fopt_rows(load, power, np.array([deadline]))
            assert TABLE[index].freq_hz == select_fopt(TABLE, deadline).freq_hz

    def test_rows_are_independent(self):
        """Stacking rows never changes any row's answer."""
        load, power = self._table_arrays()
        deadlines = np.array([0.5, 1.6, 2.1, 3.0, 10.0])
        stacked_load = np.repeat(load, len(deadlines), axis=0)
        stacked_power = np.repeat(power, len(deadlines), axis=0)
        batched = select_fopt_rows(stacked_load, stacked_power, deadlines)
        for row, deadline in enumerate(deadlines):
            [alone] = select_fopt_rows(load, power, np.array([deadline]))
            assert batched[row] == alone

    def test_infeasible_rows_pick_the_last_column(self):
        load, power = self._table_arrays()
        choice = select_fopt_rows(load, power, np.array([0.1]))
        assert choice[0] == load.shape[1] - 1

    def test_ppw_ties_resolve_to_the_lowest_frequency(self):
        """Matches Python max()'s first-maximum over an ascending table."""
        load = np.array([[2.0, 1.0, 0.5]])
        power = np.array([[1.0, 2.0, 4.0]])  # identical PPW everywhere
        [index] = select_fopt_rows(load, power, np.array([5.0]))
        assert index == 0

    def test_validation(self):
        load, power = self._table_arrays()
        with pytest.raises(ValueError, match="2-D"):
            select_fopt_rows(load[0], power[0], np.array([1.0]))
        with pytest.raises(ValueError, match="empty"):
            select_fopt_rows(
                np.empty((1, 0)), np.empty((1, 0)), np.array([1.0])
            )
        with pytest.raises(ValueError, match="one deadline per row"):
            select_fopt_rows(load, power, np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="deadline must be positive"):
            select_fopt_rows(load, power, np.array([0.0]))
        with pytest.raises(ValueError, match="positive"):
            select_fopt_rows(-load, power, np.array([1.0]))

    @given(
        deadline=st.floats(0.3, 20.0),
        rows=st.integers(min_value=1, max_value=6),
    )
    def test_batched_equals_scalar_for_any_deadline(self, deadline, rows):
        load, power = self._table_arrays()
        batched = select_fopt_rows(
            np.repeat(load, rows, axis=0),
            np.repeat(power, rows, axis=0),
            np.full(rows, deadline),
        )
        expected = select_fopt(TABLE, deadline).freq_hz
        assert all(TABLE[i].freq_hz == expected for i in batched)


class TestEquationSix:
    def test_ppw_under_error_formula(self):
        exact = ppw_under_error(2.0, 2.0, 0.0, 0.0)
        assert exact == pytest.approx(0.25)
        degraded = ppw_under_error(2.0, 2.0, 0.1, 0.1)
        assert degraded == pytest.approx(0.25 / 1.21)

    def test_error_must_keep_predictions_positive(self):
        with pytest.raises(ValueError):
            ppw_under_error(1.0, 1.0, -1.0, 0.0)

    def test_margin_is_gap_to_runner_up(self):
        margin = fopt_error_margin(TABLE, 3.0)
        fe = find_fe(TABLE)
        runner_up = max(
            (p for p in TABLE if p.freq_hz != fe.freq_hz and p.load_time_s <= 3.0),
            key=lambda p: p.ppw,
        )
        assert margin == pytest.approx(fe.ppw / runner_up.ppw - 1.0)

    def test_margin_infinite_when_only_one_feasible_point(self):
        assert fopt_error_margin(TABLE, 1.6) == float("inf")

    def test_small_errors_are_tolerated_when_margin_is_wide(self):
        wide = [_point(1.0, 3.0, 1.0), _point(2.0, 2.0, 1.0)]
        # fopt = 2 GHz with 50% margin.
        assert fopt_tolerates_errors(wide, 10.0, 0.05, 0.05)

    def test_large_errors_are_not_tolerated(self):
        wide = [_point(1.0, 3.0, 1.0), _point(2.0, 2.0, 1.0)]
        assert not fopt_tolerates_errors(wide, 10.0, 0.30, 0.20)

    def test_discretization_argument(self):
        """The paper's Fig. 6 point: errors much smaller than the PPW
        step between adjacent settings cannot change fopt."""
        margin = fopt_error_margin(TABLE, 10.0)
        tiny = margin / 4
        assert fopt_tolerates_errors(TABLE, 10.0, tiny, tiny / 2)
