"""Engine-level governor behaviour: full frequency trajectories.

The unit tests check single decisions; these run whole page loads and
assert the *shape* of each governor's frequency timeline -- the ramp
patterns that define Android's utilization governors and DORA's
converge-then-hold behaviour.
"""

import pytest

from repro.browser.browser import browser_tasks
from repro.browser.pages import page_by_name
from repro.core.governors import InteractiveGovernor, OndemandGovernor
from repro.sim.analysis import frequency_timeline
from repro.sim.engine import Engine, EngineConfig
from repro.sim.governor import RunContext
from repro.soc.device import Device
from repro.workloads.kernels import kernel_by_name, kernel_task


def _run(governor, page="bbc", kernel="bfs", dt=0.002):
    device = Device()
    page_obj = page_by_name(page)
    tasks = browser_tasks(page_obj).as_list()
    if kernel:
        tasks.append(kernel_task(kernel_by_name(kernel)))
    engine = Engine(
        device=device,
        tasks=tasks,
        governor=governor,
        context=RunContext(spec=device.spec, page_features=page_obj.features),
        config=EngineConfig(dt_s=dt, record_trace=True),
    )
    return engine.run()


class TestInteractiveTrajectory:
    def test_starts_low_and_ramps_monotonically_while_busy(self):
        result = _run(InteractiveGovernor())
        timeline = frequency_timeline(result.trace)
        freqs = [freq for _, freq in timeline]
        assert freqs[0] == pytest.approx(300e6)
        # While the load keeps every core busy, interactive only ramps up.
        assert freqs == sorted(freqs)

    def test_passes_through_the_hispeed_step(self):
        governor = InteractiveGovernor()
        result = _run(governor)
        visited = [freq for _, freq in frequency_timeline(result.trace)]
        hispeed = Device().spec.ceil_state(governor.hispeed_freq_hz).freq_hz
        assert hispeed in visited

    def test_reaches_fmax_within_a_few_hundred_ms(self):
        result = _run(InteractiveGovernor())
        timeline = frequency_timeline(result.trace)
        fmax = Device().spec.max_state.freq_hz
        reach_times = [t for t, f in timeline if f == fmax]
        assert reach_times, "never reached fmax"
        assert reach_times[0] < 0.5

    def test_many_decisions_few_switches(self):
        result = _run(InteractiveGovernor())
        assert len(result.decisions.times_s) > result.switch_count


class TestOndemandTrajectory:
    def test_jumps_to_fmax_in_one_decision(self):
        result = _run(OndemandGovernor())
        timeline = frequency_timeline(result.trace)
        fmax = Device().spec.max_state.freq_hz
        # First change point after the initial frequency is fmax.
        assert timeline[1][1] == fmax
        assert timeline[1][0] <= 0.05

    def test_ondemand_is_faster_but_hungrier_than_interactive(self):
        ondemand = _run(OndemandGovernor())
        interactive = _run(InteractiveGovernor())
        assert ondemand.load_time_s <= interactive.load_time_s + 0.02
        assert ondemand.avg_power_w >= interactive.avg_power_w - 0.05


class TestDoraTrajectory:
    def test_converges_to_a_small_frequency_set(self, small_predictor):
        from repro.core.dora import DoraGovernor

        result = _run(DoraGovernor(predictor=small_predictor), page="msn")
        distinct = {freq for _, freq in frequency_timeline(result.trace)}
        assert len(distinct) <= 3

    def test_holds_fopt_once_interference_is_observed(self, small_predictor):
        from repro.core.dora import DoraGovernor

        result = _run(DoraGovernor(predictor=small_predictor), page="msn")
        timeline = frequency_timeline(result.trace)
        # After the first correction, the frequency stays put.
        if len(timeline) > 1:
            settle_time = timeline[-1][0]
            assert settle_time < 0.35

    def test_dora_switch_count_is_low(self, small_predictor):
        from repro.core.dora import DoraGovernor

        result = _run(DoraGovernor(predictor=small_predictor), page="espn")
        assert result.switch_count <= 3
