"""Governor unit tests with a deterministic stub predictor."""

import pytest

from repro.browser.dom import PageFeatures
from repro.core.governors import (
    DeadlineGovernor,
    EnergyEfficientGovernor,
    FixedFrequencyGovernor,
    InteractiveGovernor,
    performance_governor,
    powersave_governor,
)
from repro.core.ppw import FrequencyPrediction
from repro.sim.governor import GovernorDecisionLog, RunContext
from repro.soc.counters import CoreCounters, CounterSample


class StubPredictor:
    """Deterministic prediction tables for governor logic tests.

    Load time scales inversely with frequency and grows with the
    observed MPKI; power grows super-linearly with frequency.  The
    PPW-optimal candidate sits in the interior.
    """

    def __init__(self, freqs_ghz=(0.8, 1.2, 1.5, 1.9, 2.3), work=2.0):
        self.freqs_ghz = freqs_ghz
        self.work = work
        self.leakage_w = 0.5
        self.calls = []

    def prediction_table(
        self,
        page_features,
        corunner_mpki,
        corunner_utilization,
        temperature_c,
        include_leakage=True,
    ):
        self.calls.append((corunner_mpki, corunner_utilization, temperature_c))
        table = []
        for freq in self.freqs_ghz:
            load = self.work * (1.0 + 0.05 * corunner_mpki) / freq + 0.4
            power = 0.9 + 0.45 * freq**2
            if include_leakage:
                power += self.leakage_w * freq / 2.3
            table.append(
                FrequencyPrediction(
                    freq_hz=freq * 1e9, load_time_s=load, power_w=power
                )
            )
        return table


def _context(spec, deadline=3.0):
    return RunContext(
        spec=spec,
        deadline_s=deadline,
        page_features=PageFeatures(1000, 100, 200, 190, 80),
    )


def _sample(freq_hz, busy=1.0, mpki_corunner=0.0, window=0.1, temp=50.0):
    corunner_busy = window if mpki_corunner > 0 else 0.0
    per_core = {
        0: CoreCounters(busy_s=busy * window, instructions=1e8, l2_accesses=1e6,
                        l2_misses=2e5),
        2: CoreCounters(
            busy_s=corunner_busy,
            instructions=5e7,
            l2_accesses=1e6,
            l2_misses=mpki_corunner * 5e7 / 1000.0,
        ),
    }
    return CounterSample(
        window_s=window,
        per_core=per_core,
        freq_hz=freq_hz,
        soc_temperature_c=temp,
        core_temperatures_c={0: temp, 2: temp},
    )


class TestFixedGovernors:
    def test_performance_pins_fmax(self, spec):
        governor = performance_governor(spec.max_state.freq_hz)
        context = _context(spec)
        assert governor.initial_frequency(context) == spec.max_state.freq_hz
        assert governor.decide(_sample(spec.max_state.freq_hz), context) == (
            spec.max_state.freq_hz
        )
        assert governor.name == "performance"

    def test_powersave_pins_fmin(self, spec):
        governor = powersave_governor(spec.min_state.freq_hz)
        assert governor.decide(_sample(300e6), _context(spec)) == 300e6
        assert governor.name == "powersave"

    def test_fixed_label_becomes_name(self, spec):
        governor = FixedFrequencyGovernor(freq_hz=960e6, label="fD")
        assert governor.name == "fD"


class TestInteractive:
    def test_idle_start_frequency_is_low(self, spec):
        governor = InteractiveGovernor()
        assert governor.initial_frequency(_context(spec)) == pytest.approx(300e6)

    def test_busy_core_below_hispeed_jumps_to_hispeed(self, spec):
        governor = InteractiveGovernor()
        governor.reset()
        target = governor.decide(_sample(300e6, busy=1.0), _context(spec))
        assert target == spec.ceil_state(governor.hispeed_freq_hz).freq_hz

    def test_busy_core_above_hispeed_keeps_climbing(self, spec):
        governor = InteractiveGovernor()
        governor.reset()
        target = governor.decide(_sample(1497.6e6, busy=1.0), _context(spec))
        assert target > 1497.6e6

    def test_light_load_scales_down_after_dwell(self, spec):
        governor = InteractiveGovernor()
        governor.reset()
        context = _context(spec)
        context.elapsed_s = 10.0  # past any ramp-up dwell
        target = governor.decide(_sample(2265.6e6, busy=0.2), context)
        assert target < 2265.6e6

    def test_ramp_down_is_blocked_within_min_sample_time(self, spec):
        governor = InteractiveGovernor()
        governor.reset()
        context = _context(spec)
        context.elapsed_s = 0.02
        raised = governor.decide(_sample(300e6, busy=1.0), context)
        context.elapsed_s = 0.04  # still inside min_sample_time
        held = governor.decide(_sample(raised, busy=0.1), context)
        assert held >= raised

    def test_proportional_target(self, spec):
        governor = InteractiveGovernor()
        governor.reset()
        context = _context(spec)
        context.elapsed_s = 10.0
        # 50% load at 2.2656 GHz -> target ~1.26 GHz, rounded up.
        target = governor.decide(_sample(2265.6e6, busy=0.5), context)
        assert target == spec.ceil_state(2265.6e6 * 0.5 / 0.9).freq_hz


class TestDeadlineGovernor:
    def test_picks_lowest_feasible_frequency(self, spec):
        governor = DeadlineGovernor(predictor=StubPredictor())
        # Stub: load(f) = 2/f + 0.4 <= 2.0 -> f >= 1.25 -> 1.5 GHz.
        target = governor.decide(_sample(2265.6e6), _context(spec, deadline=2.0))
        assert target == pytest.approx(1.5e9)

    def test_falls_back_to_fmax_when_infeasible(self, spec):
        governor = DeadlineGovernor(predictor=StubPredictor())
        target = governor.decide(_sample(2265.6e6), _context(spec, deadline=0.5))
        assert target == spec.max_state.freq_hz

    def test_interference_raises_the_choice(self, spec):
        governor = DeadlineGovernor(predictor=StubPredictor())
        quiet = governor.decide(
            _sample(2265.6e6, mpki_corunner=0.0), _context(spec, deadline=2.0)
        )
        noisy = governor.decide(
            _sample(2265.6e6, mpki_corunner=12.0), _context(spec, deadline=2.0)
        )
        assert noisy >= quiet

    def test_requires_page_census(self, spec):
        governor = DeadlineGovernor(predictor=StubPredictor())
        context = RunContext(spec=spec)
        with pytest.raises(ValueError):
            governor.decide(_sample(2265.6e6), context)


class TestEnergyEfficientGovernor:
    def test_picks_the_ppw_max_ignoring_deadline(self, spec):
        governor = EnergyEfficientGovernor(predictor=StubPredictor())
        tight = governor.decide(_sample(2265.6e6), _context(spec, deadline=0.1))
        loose = governor.decide(_sample(2265.6e6), _context(spec, deadline=99.0))
        assert tight == loose  # EE never looks at the deadline

    def test_initial_decision_assumes_no_interference(self, spec):
        stub = StubPredictor()
        governor = EnergyEfficientGovernor(predictor=stub)
        governor.initial_frequency(_context(spec))
        assert stub.calls[-1][0] == 0.0  # MPKI
        assert stub.calls[-1][1] == 0.0  # utilization


class TestDecisionLog:
    def test_changes_counts_transitions(self):
        log = GovernorDecisionLog()
        for t, f in ((0.1, 1e9), (0.2, 1e9), (0.3, 2e9), (0.4, 1e9)):
            log.record(t, f)
        assert log.changes() == 2

    def test_empty_log(self):
        assert GovernorDecisionLog().changes() == 0
