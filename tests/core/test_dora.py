"""DORA governor unit tests (Algorithm 1) with the stub predictor."""

import pytest

from repro.core.dora import EVALUATED_INTERVALS_S, DoraGovernor
from repro.core.ppw import select_fopt
from repro.sim.governor import RunContext
from tests.core.test_governors import StubPredictor, _context, _sample


class TestAlgorithmOne:
    def test_selects_ppw_max_among_feasible(self, spec):
        stub = StubPredictor()
        governor = DoraGovernor(predictor=stub)
        context = _context(spec, deadline=3.0)
        target = governor.decide(_sample(2265.6e6), context)
        expected = select_fopt(
            stub.prediction_table(context.page_features, 0.0, 1.0, 50.0),
            3.0,
        )
        assert target == expected.freq_hz

    def test_tight_deadline_forces_higher_frequency(self, spec):
        governor = DoraGovernor(predictor=StubPredictor())
        loose = governor.decide(_sample(2265.6e6), _context(spec, deadline=5.0))
        tight = governor.decide(_sample(2265.6e6), _context(spec, deadline=1.4))
        assert tight > loose

    def test_infeasible_deadline_runs_at_fmax_candidate(self, spec):
        stub = StubPredictor()
        governor = DoraGovernor(predictor=stub)
        target = governor.decide(_sample(2265.6e6), _context(spec, deadline=0.2))
        assert target == pytest.approx(max(stub.freqs_ghz) * 1e9)

    def test_interference_changes_fopt(self, spec):
        governor = DoraGovernor(predictor=StubPredictor())
        context = _context(spec, deadline=2.0)
        quiet = governor.decide(_sample(2265.6e6, mpki_corunner=0.0), context)
        noisy = governor.decide(_sample(2265.6e6, mpki_corunner=15.0), context)
        assert noisy >= quiet

    def test_initial_frequency_uses_zero_interference_prior(self, spec):
        stub = StubPredictor()
        governor = DoraGovernor(predictor=stub)
        governor.initial_frequency(_context(spec))
        mpki, utilization, _ = stub.calls[-1]
        assert mpki == 0.0
        assert utilization == 0.0

    def test_requires_page_census(self, spec):
        governor = DoraGovernor(predictor=StubPredictor())
        with pytest.raises(ValueError):
            governor.decide(_sample(2265.6e6), RunContext(spec=spec))


class TestLeakageAblation:
    def test_no_lkg_renames_itself(self):
        governor = DoraGovernor(predictor=StubPredictor(), include_leakage=False)
        assert governor.name == "DORA_no_lkg"

    def test_leakage_aware_keeps_name(self):
        assert DoraGovernor(predictor=StubPredictor()).name == "DORA"

    def test_no_lkg_sees_cheaper_high_frequencies(self, spec):
        """Without the leakage term the predicted power table is lower,
        and by construction of the stub more so at high frequency --
        the ablation's selection bias."""
        stub = StubPredictor()
        aware_table = stub.prediction_table(None, 0.0, 0.0, 50.0, True)
        blind_table = stub.prediction_table(None, 0.0, 0.0, 50.0, False)
        deltas = [
            aware.power_w - blind.power_w
            for aware, blind in zip(aware_table, blind_table)
        ]
        assert deltas == sorted(deltas)
        assert deltas[-1] > deltas[0]


class TestBookkeeping:
    def test_last_table_and_fopt_are_recorded(self, spec):
        governor = DoraGovernor(predictor=StubPredictor())
        target = governor.decide(_sample(2265.6e6), _context(spec))
        assert governor.last_fopt_hz == target
        assert len(governor.last_table) == 5

    def test_reset_clears_state(self, spec):
        governor = DoraGovernor(predictor=StubPredictor())
        governor.decide(_sample(2265.6e6), _context(spec))
        governor.reset()
        assert governor.last_table == []
        assert governor.last_fopt_hz == 0.0

    def test_default_interval_is_100ms(self):
        assert DoraGovernor(predictor=StubPredictor()).interval_s == 0.1

    def test_paper_evaluated_intervals(self):
        assert EVALUATED_INTERVALS_S == (0.05, 0.1, 0.25)
