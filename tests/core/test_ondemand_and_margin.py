"""Tests for the extension governors: ondemand and QoS-margin DORA."""

import pytest

from repro.core.dora import DoraGovernor
from repro.core.governors import OndemandGovernor
from tests.core.test_governors import StubPredictor, _context, _sample


class TestOndemand:
    def test_starts_low(self, spec):
        governor = OndemandGovernor()
        assert governor.initial_frequency(_context(spec)) == pytest.approx(300e6)

    def test_high_load_jumps_straight_to_fmax(self, spec):
        """Unlike interactive's hispeed step, ondemand goes to max."""
        governor = OndemandGovernor()
        target = governor.decide(_sample(300e6, busy=0.95), _context(spec))
        assert target == spec.max_state.freq_hz

    def test_light_load_scales_down_proportionally(self, spec):
        governor = OndemandGovernor()
        target = governor.decide(_sample(2265.6e6, busy=0.3), _context(spec))
        assert target == spec.ceil_state(2265.6e6 * 0.3 / 0.8).freq_hz

    def test_threshold_boundary(self, spec):
        governor = OndemandGovernor(up_threshold=0.5)
        assert governor.decide(
            _sample(960e6, busy=0.5), _context(spec)
        ) == spec.max_state.freq_hz

    def test_name(self):
        assert OndemandGovernor().name == "ondemand"


class TestQosMargin:
    def test_margin_bounds_validated(self):
        with pytest.raises(ValueError, match=r"qos_margin must lie in \[0, 1\)"):
            DoraGovernor(predictor=StubPredictor(), qos_margin=1.0)
        with pytest.raises(ValueError, match=r"qos_margin must lie in \[0, 1\)"):
            DoraGovernor(predictor=StubPredictor(), qos_margin=-0.1)

    def test_margin_boundaries_accepted(self):
        """The interval is closed at 0 and open at 1."""
        assert DoraGovernor(predictor=StubPredictor(), qos_margin=0.0).qos_margin == 0.0
        extreme = DoraGovernor(predictor=StubPredictor(), qos_margin=0.999)
        assert extreme.qos_margin == 0.999

    def test_service_config_shares_the_validation_rule(self):
        """The batched service rejects the same margins with the same
        message as the scalar governor."""
        from repro.serve.service import ServiceConfig

        for margin in (1.0, -0.1, 2.5):
            with pytest.raises(ValueError) as governor_error:
                DoraGovernor(predictor=StubPredictor(), qos_margin=margin)
            with pytest.raises(ValueError) as service_error:
                ServiceConfig(qos_margin=margin)
            assert str(governor_error.value) == str(service_error.value)

    def test_zero_margin_is_the_paper_behaviour(self, spec):
        base = DoraGovernor(predictor=StubPredictor())
        margined = DoraGovernor(predictor=StubPredictor(), qos_margin=0.0)
        context = _context(spec, deadline=2.0)
        assert base.decide(_sample(2265.6e6), context) == margined.decide(
            _sample(2265.6e6), context
        )

    def test_margin_escalates_near_boundary_choices(self, spec):
        """Stub: load(f) = 2/f + 0.4.  Deadline 2.0 -> 1.5 GHz feasible
        (1.73s).  With a 15% margin the effective deadline is 1.7 s and
        1.5 GHz no longer qualifies -> DORA must escalate."""
        base = DoraGovernor(predictor=StubPredictor())
        careful = DoraGovernor(predictor=StubPredictor(), qos_margin=0.15)
        context = _context(spec, deadline=2.0)
        assert base.decide(_sample(2265.6e6), context) == pytest.approx(1.5e9)
        assert careful.decide(_sample(2265.6e6), context) > 1.5e9

    def test_margin_never_relaxes(self, spec):
        """A margin can only raise (never lower) the chosen frequency."""
        context = _context(spec, deadline=2.0)
        base_choice = DoraGovernor(predictor=StubPredictor()).decide(
            _sample(2265.6e6), context
        )
        for margin in (0.05, 0.1, 0.2):
            choice = DoraGovernor(
                predictor=StubPredictor(), qos_margin=margin
            ).decide(_sample(2265.6e6), context)
            assert choice >= base_choice
