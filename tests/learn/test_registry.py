"""Model registry: versioning, atomic publish, lineage, activation."""

import pytest

from repro.browser.dom import PageFeatures
from repro.learn.registry import ModelRegistry, RegistryError


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path, fingerprint="cafe0123")


@pytest.fixture()
def census():
    return PageFeatures(1500, 150, 300, 280, 120)


class TestPublish:
    def test_versions_count_up_from_one(self, registry, small_predictor):
        assert registry.versions() == []
        assert registry.latest_version() is None
        assert registry.publish(small_predictor) == 1
        assert registry.publish(small_predictor) == 2
        assert registry.versions() == [1, 2]
        assert registry.latest_version() == 2

    def test_no_tmp_debris_survives_a_publish(self, registry, small_predictor):
        registry.publish(small_predictor)
        leftovers = [
            entry for entry in registry.partition.iterdir()
            if entry.name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_round_trip_preserves_predictions(
        self, registry, small_predictor, census
    ):
        version = registry.publish(small_predictor)
        rebuilt = registry.load(version)
        original = small_predictor.prediction_table(census, 5.0, 1.0, 55.0)
        restored = rebuilt.prediction_table(census, 5.0, 1.0, 55.0)
        assert [p.load_time_s for p in original] == [
            p.load_time_s for p in restored
        ]
        assert [p.power_w for p in original] == [p.power_w for p in restored]

    def test_meta_records_lineage_and_calibration(
        self, registry, small_predictor
    ):
        root = registry.publish(small_predictor, source="seed")
        child = registry.publish(
            small_predictor,
            parent_version=root,
            extra_meta={"records_seen": 99},
        )
        meta = registry.meta(child)
        assert meta["version"] == child
        assert meta["parent_version"] == root
        assert meta["source"] == "retrain"
        assert meta["records_seen"] == 99
        assert meta["calibration"]["fingerprint"]
        assert registry.meta(root)["parent_version"] is None

    def test_fingerprints_partition_the_namespace(
        self, tmp_path, small_predictor
    ):
        a = ModelRegistry(tmp_path, fingerprint="aaaa")
        b = ModelRegistry(tmp_path, fingerprint="bbbb")
        a.publish(small_predictor)
        assert b.versions() == []
        assert b.latest_version() is None


class TestActivation:
    def test_activate_pins_and_loads(self, registry, small_predictor):
        assert registry.active_version() is None
        assert registry.active_predictor() is None
        version = registry.publish(small_predictor)
        registry.activate(version)
        assert registry.active_version() == version
        assert registry.active_predictor() is not None

    def test_activate_unknown_version_is_an_error(
        self, registry, small_predictor
    ):
        registry.publish(small_predictor)
        with pytest.raises(RegistryError):
            registry.activate(7)

    def test_missing_version_load_is_an_error(self, registry):
        with pytest.raises(RegistryError, match="not found"):
            registry.load(1)
        with pytest.raises(RegistryError, match="metadata"):
            registry.meta(1)
