"""Retraining: vector harvest, exact-recovery labeling, publishing."""

import pytest

from repro.browser.pages import page_by_name
from repro.learn.registry import ModelRegistry
from repro.learn.retrain import (
    RetrainConfig,
    harvest_vectors,
    retrain_from_telemetry,
)
from repro.learn.shadow import ShadowScorer
from repro.learn.telemetry import TelemetryStore, decision_record
from repro.serve.service import DecisionRequest, DecisionService


def _requests():
    """Varied accepted traffic across the small campaign's pages."""
    requests = []
    for index, page in enumerate(("amazon", "msn", "espn")):
        for step in range(4):
            requests.append(
                DecisionRequest(
                    device_id=f"phone-{index}-{step}",
                    page=page_by_name(page).features,
                    corunner_mpki=0.5 + 1.75 * step,
                    corunner_utilization=0.2 + 0.15 * step,
                    temperature_c=46.0 + 2.5 * step,
                    deadline_s=3.0,
                )
            )
    return requests


def _harvested_store(tmp_path, predictor):
    """A telemetry store filled by serving ``_requests`` once."""
    requests = _requests()
    responses = DecisionService(predictor).decide(requests, now=0.0)
    store = TelemetryStore(tmp_path / "telemetry", batch_size=8)
    with store.writer() as writer:
        for request, response in zip(requests, responses):
            writer.append(decision_record(request, response, now_s=0.0))
    return store, requests, responses


class TestHarvestVectors:
    def _record(self, mpki=1.0, accepted=True, page=(1, 2, 3, 4, 5)):
        return {
            "accepted": accepted,
            "page": list(page),
            "corunner_mpki": mpki,
            "corunner_utilization": 0.5,
            "temperature_c": 48.0,
        }

    def test_dedups_preserving_first_seen_order(self):
        records = [
            self._record(mpki=2.0),
            self._record(mpki=1.0),
            self._record(mpki=2.0),  # revisit traffic: exact duplicate
            self._record(mpki=1.0),
        ]
        vectors = harvest_vectors(records)
        assert [v[1] for v in vectors] == [2.0, 1.0]

    def test_rejections_are_excluded(self):
        records = [self._record(accepted=False), self._record(mpki=4.0)]
        vectors = harvest_vectors(records)
        assert len(vectors) == 1
        assert vectors[0][1] == 4.0


class TestConfigValidation:
    def test_chunk_floor(self):
        with pytest.raises(ValueError, match="chunk"):
            RetrainConfig(chunk_size=0)

    def test_ridge_sign(self):
        with pytest.raises(ValueError, match="ridge"):
            RetrainConfig(ridge_cross=-0.1)


class TestClosedLoop:
    """The tentpole invariant: retraining on a model's own telemetry
    reproduces its decisions exactly."""

    def test_candidate_reproduces_every_served_decision(
        self, small_predictor, tmp_path
    ):
        store, requests, responses = _harvested_store(
            tmp_path, small_predictor
        )
        registry = ModelRegistry(tmp_path / "registry")
        result = retrain_from_telemetry(
            store, small_predictor, registry=registry
        )
        assert result.records_seen == len(requests)
        assert result.vectors_unique == len(requests)  # all distinct
        assert result.vectors_dropped == 0
        assert result.version == 1

        candidate = result.models.predictor
        scorer = ShadowScorer(candidate)
        served = [
            (request, response.fopt_hz)
            for request, response in zip(requests, responses)
            if response.accepted
        ]
        scorer.score_batch(
            [request for request, _ in served],
            [fopt for _, fopt in served],
        )
        assert scorer.report.scored == len(served)
        assert scorer.report.mismatches == 0

    def test_candidate_surfaces_recover_the_generating_predictions(
        self, small_predictor, tmp_path
    ):
        store, requests, _ = _harvested_store(tmp_path, small_predictor)
        result = retrain_from_telemetry(store, small_predictor)
        candidate = result.models.predictor
        request = requests[0]
        for freq_hz in small_predictor.candidates():
            original = small_predictor.predict_at(
                request.page,
                request.corunner_mpki,
                request.corunner_utilization,
                request.temperature_c,
                freq_hz,
            )
            refit = candidate.predict_at(
                request.page,
                request.corunner_mpki,
                request.corunner_utilization,
                request.temperature_c,
                freq_hz,
            )
            assert refit.load_time_s == pytest.approx(
                original.load_time_s, rel=1e-9
            )
            assert refit.power_w == pytest.approx(original.power_w, rel=1e-9)

    def test_publish_meta_carries_the_harvest_counts(
        self, small_predictor, tmp_path
    ):
        store, requests, _ = _harvested_store(tmp_path, small_predictor)
        registry = ModelRegistry(tmp_path / "registry")
        result = retrain_from_telemetry(
            store, small_predictor, registry=registry, parent_version=None
        )
        meta = registry.meta(result.version)
        assert meta["source"] == "retrain"
        assert meta["records_seen"] == len(requests)
        assert meta["ridge_cross"] == 0.0

    def test_empty_store_is_an_error(self, small_predictor, tmp_path):
        store = TelemetryStore(tmp_path / "telemetry")
        with pytest.raises(ValueError, match="no trainable telemetry"):
            retrain_from_telemetry(store, small_predictor)
