"""Fleet hot-swap and shadow window: batch boundaries, anchors, promote."""

import pytest

from repro.browser.pages import page_by_name
from repro.learn.shadow import ShadowScorer, page_class
from repro.serve.fleet import FleetConfig, FleetDecisionService
from repro.serve.service import (
    DecisionRequest,
    DecisionService,
    ServiceConfig,
)


def _request(device="phone-0", mpki=2.0, util=0.5, temp=48.0, page="amazon"):
    return DecisionRequest(
        device_id=device,
        page=page_by_name(page).features,
        corunner_mpki=mpki,
        corunner_utilization=util,
        temperature_c=temp,
        deadline_s=3.0,
    )


def _varied_requests():
    return [
        _request(
            f"dev-{index}",
            mpki=0.5 + 0.9 * index,
            util=0.2 + 0.05 * index,
            temp=45.0 + 1.5 * index,
            page=("amazon", "msn", "espn")[index % 3],
        )
        for index in range(12)
    ]


def _fopts(predictor, requests):
    return [
        r.fopt_hz for r in DecisionService(predictor).decide(requests, now=0.0)
    ]


@pytest.fixture(scope="module")
def disagreement(small_predictor, alt_predictor):
    """Requests plus both models' reference fopts; they must differ."""
    requests = _varied_requests()
    old = _fopts(small_predictor, requests)
    new = _fopts(alt_predictor, requests)
    assert old != new, "fixtures must disagree for swap tests to have power"
    return requests, old, new


class TestHotSwap:
    def test_swap_is_a_batch_boundary(
        self, small_predictor, alt_predictor, disagreement
    ):
        requests, old, new = disagreement
        config = FleetConfig(
            workers=2, skip_cache=False, service=ServiceConfig()
        )
        with FleetDecisionService(small_predictor, config) as fleet:
            responses = []
            # Buffered but not yet dispatched when the swap lands: these
            # tickets must still be answered by the old model.
            for request in requests:
                responses.extend(fleet.submit(request, now=0.0))
            fleet.swap_model(alt_predictor, now=0.0)
            responses.extend(fleet.flush(now=1.0))
            assert len(responses) == len(requests)
            responses.sort(key=lambda r: r.request_id)
            assert [r.fopt_hz for r in responses] == old
            # Post-swap traffic is decided by the candidate.
            after = fleet.decide(requests, now=2.0)
            assert [r.fopt_hz for r in after] == new
            assert fleet.model_version == 1

    def test_swap_clears_skip_anchors(
        self, small_predictor, alt_predictor, disagreement
    ):
        requests, old, new = disagreement
        changed = next(
            i for i, (a, b) in enumerate(zip(old, new)) if a != b
        )
        request = requests[changed]
        config = FleetConfig(workers=1, service=ServiceConfig(max_batch_size=1))
        with FleetDecisionService(small_predictor, config) as fleet:
            [first] = fleet.decide([request], now=0.0)
            [hit] = fleet.decide([request], now=0.5)
            assert hit.trace is not None and hit.trace.skipped
            assert hit.fopt_hz == first.fopt_hz == old[changed]
            fleet.swap_model(alt_predictor, now=1.0)
            # The anchor is gone: same vector re-evaluates on the new
            # model instead of replaying the old model's decision.
            [post] = fleet.decide([request], now=1.5)
            assert post.trace is not None and not post.trace.skipped
            assert post.fopt_hz == new[changed]
            # ... and re-anchors freshly under the new model.
            [again] = fleet.decide([request], now=2.0)
            assert again.trace is not None and again.trace.skipped
            assert again.fopt_hz == new[changed]

    def test_swap_on_closed_fleet_is_an_error(
        self, small_predictor, alt_predictor
    ):
        fleet = FleetDecisionService(small_predictor, FleetConfig(workers=1))
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.swap_model(alt_predictor)


class TestShadowWindow:
    def test_self_shadow_scores_clean_and_promotes(self, small_predictor):
        requests = _varied_requests()
        config = FleetConfig(workers=2, skip_cache=False)
        with FleetDecisionService(small_predictor, config) as fleet:
            fleet.start_shadow(small_predictor)
            fleet.decide(requests, now=0.0)
            report = fleet.shadow_report()
            assert report.scored == len(requests)
            assert report.mismatches == 0
            assert fleet.promote() is True
            assert fleet.shadow_report() is None
            assert fleet.model_version == 1

    def test_mismatching_candidate_is_not_promoted(
        self, small_predictor, alt_predictor, disagreement
    ):
        requests, old, new = disagreement
        config = FleetConfig(workers=1, skip_cache=False)
        with FleetDecisionService(small_predictor, config) as fleet:
            fleet.start_shadow(alt_predictor)
            fleet.decide(requests, now=0.0)
            report = fleet.shadow_report()
            assert report.mismatches > 0
            assert fleet.promote() is False
            # Still in shadow, old model still serving.
            assert fleet.shadow_report() is not None
            assert fleet.model_version == 0
            fleet.rollback()
            assert fleet.shadow_report() is None
            assert fleet.model_version == 0

    def test_promote_without_shadow_is_an_error(self, small_predictor):
        with FleetDecisionService(
            small_predictor, FleetConfig(workers=1)
        ) as fleet:
            with pytest.raises(RuntimeError, match="no shadow"):
                fleet.promote()
            fleet.start_shadow(small_predictor)
            with pytest.raises(RuntimeError, match="scored no decisions"):
                fleet.promote()

    def test_skip_hits_are_not_shadow_scored(self, small_predictor):
        request = _request()
        config = FleetConfig(workers=1, service=ServiceConfig(max_batch_size=1))
        with FleetDecisionService(small_predictor, config) as fleet:
            fleet.start_shadow(small_predictor)
            fleet.decide([request], now=0.0)
            fleet.decide([request], now=0.5)  # pure skip-cache replay
            assert fleet.shadow_report().scored == 1


class TestShadowScoring:
    def test_page_class_bucketing(self):
        assert page_class(360) == "small"
        assert page_class(999) == "small"
        assert page_class(1000) == "medium"
        assert page_class(3999) == "medium"
        assert page_class(4000) == "large"
        assert page_class(7081) == "large"

    def test_forced_mismatch_accumulates_regret(self, small_predictor):
        requests = _varied_requests()[:4]
        served = _fopts(small_predictor, requests)
        scorer = ShadowScorer(small_predictor)
        # Lie about what was served: claim a feasible frequency with
        # strictly worse candidate-view PPW than the real winner, so the
        # mismatch carries positive regret.
        request = requests[0]
        table = small_predictor.prediction_table(
            request.page,
            request.corunner_mpki,
            request.corunner_utilization,
            request.temperature_c,
        )
        by_freq = {point.freq_hz: point for point in table}
        winner_ppw = 1.0 / (
            by_freq[served[0]].load_time_s * by_freq[served[0]].power_w
        )
        wrong = next(
            point.freq_hz
            for point in table
            if point.load_time_s <= request.deadline_s
            and 1.0 / (point.load_time_s * point.power_w) < winner_ppw
        )
        scorer.score_batch(requests, [wrong] + served[1:])
        assert scorer.report.scored == 4
        assert scorer.report.mismatches == 1
        assert scorer.report.mismatch_rate() == 0.25
        assert scorer.report.regret_sum > 0.0
        record = scorer.report.to_record()
        assert record["by_class"]["small"]["scored"] >= 1
