"""Telemetry store: record shape, fsync batching, partitioning."""

import json

import numpy as np
import pytest

from repro.browser.pages import page_by_name
from repro.learn.telemetry import (
    REQUIRED_FIELDS,
    TELEMETRY_SCHEMA,
    TelemetryStore,
    TelemetryWriter,
    decision_record,
)
from repro.serve.service import DecisionRequest, DecisionResponse


def _record(device="phone-0", mpki=2.0, accepted=True):
    return {
        "device_id": device,
        "page": [1500, 150, 300, 280, 120],
        "corunner_mpki": mpki,
        "corunner_utilization": 0.5,
        "temperature_c": 48.0,
        "deadline_s": 3.0,
        "fopt_hz": 1.19e9,
        "accepted": accepted,
    }


class TestDecisionRecord:
    def test_carries_every_required_field(self):
        request = DecisionRequest(
            device_id="phone-7",
            page=page_by_name("amazon").features,
            corunner_mpki=3.25,
            corunner_utilization=0.75,
            temperature_c=51.5,
            deadline_s=2.5,
        )
        response = DecisionResponse(
            request_id=42,
            device_id="phone-7",
            fopt_hz=1.7280e9,
            accepted=True,
            queue_delay_s=0.0,
            trace=None,
        )
        record = decision_record(request, response, now_s=1.5, model_version=3)
        for field in REQUIRED_FIELDS:
            assert field in record
        assert record["page"] == list(request.page.as_tuple())
        assert record["model_version"] == 3
        assert record["skipped"] is False
        assert record["simulated_load_time_s"] is None

    def test_schema_tag_is_versioned(self):
        assert TELEMETRY_SCHEMA.endswith("/1")


class TestWriterBatching:
    def test_records_buffer_until_the_batch_boundary(self, tmp_path):
        path = tmp_path / "shard-0000.jsonl"
        writer = TelemetryWriter(path, batch_size=4)
        for index in range(3):
            writer.append(_record(mpki=float(index)))
        # Below the batch size nothing has been synced yet.
        assert writer.sync_batches == 0
        assert path.read_text() == ""
        writer.append(_record(mpki=3.0))
        assert writer.sync_batches == 1
        assert writer.records_written == 4
        assert len(path.read_text().splitlines()) == 4
        writer.close()

    def test_close_flushes_the_tail(self, tmp_path):
        path = tmp_path / "shard-0000.jsonl"
        with TelemetryWriter(path, batch_size=64) as writer:
            writer.append(_record())
        assert writer.records_written == 1
        assert len(path.read_text().splitlines()) == 1
        writer.close()  # idempotent

    def test_missing_fields_are_rejected(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "s.jsonl", batch_size=1)
        bad = _record()
        del bad["fopt_hz"]
        with pytest.raises(ValueError, match="fopt_hz"):
            writer.append(bad)
        writer.close()

    def test_batch_size_floor(self, tmp_path):
        with pytest.raises(ValueError, match="batch size"):
            TelemetryWriter(tmp_path / "s.jsonl", batch_size=0)

    def test_lines_round_trip_floats_exactly(self, tmp_path):
        path = tmp_path / "shard-0000.jsonl"
        record = _record(mpki=2.0 / 3.0)
        with TelemetryWriter(path, batch_size=1) as writer:
            writer.append(record)
        replayed = json.loads(path.read_text())
        assert replayed["corunner_mpki"] == record["corunner_mpki"]


class TestStorePartitioning:
    def test_records_land_under_the_fingerprint(self, tmp_path):
        store = TelemetryStore(tmp_path, fingerprint="cafe0123")
        assert store.partition == tmp_path / "cafe0123"
        assert store.shard_path(3).name == "shard-0003.jsonl"
        with pytest.raises(ValueError, match="shard index"):
            store.shard_path(-1)

    def test_different_calibrations_never_mix(self, tmp_path):
        old = TelemetryStore(tmp_path, fingerprint="aaaa")
        new = TelemetryStore(tmp_path, fingerprint="bbbb")
        with old.writer() as writer:
            writer.append(_record(device="old-phone"))
        with new.writer() as writer:
            writer.append(_record(device="new-phone"))
        devices = {record["device_id"] for record in new.iter_records()}
        assert devices == {"new-phone"}

    def test_iter_is_shard_major_append_order(self, tmp_path):
        store = TelemetryStore(tmp_path, fingerprint="cafe", batch_size=1)
        with store.writer(shard=1) as writer:
            writer.append(_record(device="s1-a"))
        with store.writer(shard=0) as writer:
            writer.append(_record(device="s0-a"))
            writer.append(_record(device="s0-b"))
        devices = [record["device_id"] for record in store.iter_records()]
        assert devices == ["s0-a", "s0-b", "s1-a"]
        assert store.record_count() == 3

    def test_export_npz_encodes_missing_outcomes_as_nan(self, tmp_path):
        store = TelemetryStore(tmp_path, fingerprint="cafe", batch_size=1)
        with store.writer() as writer:
            record = _record()
            record["simulated_load_time_s"] = 1.25
            writer.append(record)
            writer.append(_record(accepted=False))
        out = tmp_path / "telemetry.npz"
        assert store.export_npz(out) == 2
        arrays = np.load(out)
        assert arrays["accepted"].tolist() == [True, False]
        assert arrays["simulated_load_time_s"][0] == 1.25
        assert np.isnan(arrays["simulated_energy_j"]).all()
