"""Decision service: micro-batching, admission, tracing, sessions."""

import math

import pytest

from repro.browser.pages import page_by_name
from repro.models.performance_model import MIN_PREDICTED_LOAD_TIME_S
from repro.serve.service import (
    DecisionRequest,
    DecisionService,
    ServiceConfig,
)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _request(device="phone-0", deadline=3.0, mpki=2.0, util=0.5, temp=48.0):
    return DecisionRequest(
        device_id=device,
        page=page_by_name("amazon").features,
        corunner_mpki=mpki,
        corunner_utilization=util,
        temperature_c=temp,
        deadline_s=deadline,
    )


@pytest.fixture
def clock():
    return _Clock()


@pytest.fixture
def service(small_predictor, clock):
    return DecisionService(
        small_predictor,
        config=ServiceConfig(max_batch_size=4, max_wait_s=0.01),
        clock=clock,
    )


class TestBatching:
    def test_submit_queues_until_batch_fills(self, service):
        for i in range(3):
            assert service.submit(_request(f"phone-{i}")) == []
        assert service.pending() == 3
        responses = service.submit(_request("phone-3"))
        assert len(responses) == 4
        assert service.pending() == 0
        assert service.stats.flushes_on_size == 1
        assert [r.request_id for r in responses] == [0, 1, 2, 3]

    def test_poll_flushes_after_the_wait_budget(self, service, clock):
        service.submit(_request())
        clock.now = 0.005
        assert service.poll() == []  # oldest has waited 5 ms < 10 ms
        clock.now = 0.010
        responses = service.poll()
        assert len(responses) == 1
        assert service.stats.flushes_on_wait == 1
        assert responses[0].queue_delay_s == pytest.approx(0.010)

    def test_flush_forces_a_partial_batch(self, service):
        service.submit(_request("a"))
        service.submit(_request("b"))
        responses = service.flush()
        assert {r.device_id for r in responses} == {"a", "b"}
        assert service.flush() == []

    def test_decide_answers_in_submission_order(self, service):
        requests = [_request(f"phone-{i}", mpki=float(i)) for i in range(6)]
        responses = service.decide(requests)
        assert [r.request_id for r in responses] == list(range(6))
        assert [r.device_id for r in responses] == [
            r.device_id for r in requests
        ]

    def test_batch_size_shows_up_in_traces(self, service):
        responses = service.decide([_request(f"p{i}") for i in range(3)])
        assert all(r.trace.batch_size == 3 for r in responses)


class TestAdmission:
    def test_tight_deadline_rejected_immediately(self, service):
        [response] = service.submit(_request(deadline=0.02))
        assert not response.accepted
        assert response.trace is None
        assert service.pending() == 0
        assert service.stats.rejected_total == 1
        # The answer is the highest candidate frequency (Algorithm 1's
        # infeasible fallback).
        assert response.fopt_hz == max(service.kernel.freqs_hz)

    def test_margin_tightens_admission(self, small_predictor):
        # 0.06 s deadline passes with no margin (floor is 0.05 s) but
        # fails once a 20 % margin shrinks it to 0.048 s.
        lax = DecisionService(small_predictor)
        assert lax.admits(_request(deadline=0.06))
        margined = DecisionService(
            small_predictor, config=ServiceConfig(qos_margin=0.2)
        )
        assert not margined.admits(_request(deadline=0.06))

    def test_exactly_at_the_floor_is_admitted(self, small_predictor):
        # Admission is >=, so a deadline equal to the predicted-load
        # floor is the tightest request that still gets a decision.
        service = DecisionService(small_predictor)
        at_floor = _request(deadline=MIN_PREDICTED_LOAD_TIME_S)
        assert service.effective_deadline_s(at_floor) == (
            MIN_PREDICTED_LOAD_TIME_S
        )
        assert service.admits(at_floor)
        just_under = _request(
            deadline=math.nextafter(MIN_PREDICTED_LOAD_TIME_S, 0.0)
        )
        assert not service.admits(just_under)

    def test_margin_boundary_lands_exactly_on_the_floor(
        self, small_predictor
    ):
        # 0.1 s halved by a 50 % margin is exactly the 0.05 s floor in
        # binary floating point, so the boundary case is admitted; one
        # ulp less deadline is not.
        service = DecisionService(
            small_predictor, config=ServiceConfig(qos_margin=0.5)
        )
        assert service.effective_deadline_s(_request(deadline=0.1)) == (
            MIN_PREDICTED_LOAD_TIME_S
        )
        assert service.admits(_request(deadline=0.1))
        assert not service.admits(
            _request(deadline=math.nextafter(0.1, 0.0))
        )

    def test_exactly_at_deadline_stays_feasible(self, small_predictor):
        # Algorithm 1's feasibility test is <=: a candidate whose
        # predicted load time equals the effective deadline is kept,
        # and (being PPW-optimal over the wider set) still wins.
        service = DecisionService(small_predictor)
        [probe] = service.decide([_request(deadline=3.0)])
        pinned_deadline = probe.trace.load_time_s
        [pinned] = service.decide(
            [_request("phone-pin", deadline=pinned_deadline)]
        )
        assert pinned.trace.feasible
        assert pinned.fopt_hz == probe.fopt_hz
        assert pinned.trace.load_time_s == pinned_deadline

    def test_request_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            _request(deadline=0.0)
        with pytest.raises(ValueError, match="MPKI"):
            _request(mpki=-1.0)
        with pytest.raises(ValueError, match="utilization"):
            _request(util=1.5)


class TestConfigValidation:
    def test_qos_margin_range(self):
        with pytest.raises(ValueError, match=r"qos_margin must lie in \[0, 1\)"):
            ServiceConfig(qos_margin=1.0)
        with pytest.raises(ValueError, match=r"qos_margin"):
            ServiceConfig(qos_margin=-0.01)
        assert ServiceConfig(qos_margin=0.0).qos_margin == 0.0
        assert ServiceConfig(qos_margin=0.999).qos_margin == 0.999

    def test_batch_and_wait_bounds(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            ServiceConfig(max_wait_s=-0.001)


class TestSessions:
    def test_decisions_update_the_registry(self, service, clock):
        service.decide([_request("phone-7", mpki=4.0, temp=51.0)])
        session = service.registry.get("phone-7")
        assert session.decisions == 1
        assert session.corunner_mpki == 4.0
        assert session.temperature_c == 51.0
        assert session.current_freq_hz > 0

    def test_rejections_update_the_registry(self, service):
        service.submit(_request("phone-8", deadline=0.02))
        assert service.registry.get("phone-8").rejections == 1

    def test_rejection_refreshes_but_never_records_the_vector(
        self, small_predictor, clock
    ):
        # A rejected request keeps the device's session alive (it is
        # activity) but its feature vector is never recorded -- only
        # served decisions may become skip-cache anchors.
        service = DecisionService(
            small_predictor,
            config=ServiceConfig(max_batch_size=1, session_ttl_s=5.0),
            clock=clock,
        )
        service.decide([_request("dev", mpki=4.0)])
        clock.now = 4.0
        service.submit(_request("dev", deadline=0.02, mpki=9.0))
        session = service.registry.get("dev")
        assert session.rejections == 1
        assert session.corunner_mpki == 4.0
        assert session.last_seen_s == 4.0
        clock.now = 8.0
        service.decide([_request("other")])  # eviction pass at t=8
        assert "dev" in service.registry  # the rejection kept it alive

    def test_silent_devices_evicted_on_later_flushes(
        self, small_predictor, clock
    ):
        service = DecisionService(
            small_predictor,
            config=ServiceConfig(max_batch_size=1, session_ttl_s=5.0),
            clock=clock,
        )
        service.decide([_request("gone")])
        clock.now = 20.0
        service.decide([_request("here")])
        assert "gone" not in service.registry
        assert "here" in service.registry

    def test_stats_mean_batch_size(self, service):
        service.decide([_request(f"p{i}") for i in range(4)])  # one pass of 4
        service.decide([_request("solo")])  # one pass of 1
        assert service.stats.batches_total == 2
        assert service.stats.mean_batch_size() == pytest.approx(2.5)
        assert service.stats.largest_batch == 4
