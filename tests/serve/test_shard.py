"""Shard layer: partitioning, worker protocol, crash recovery."""

import os

import pytest

from repro.browser.pages import page_by_name
from repro.runtime.jobs import JobError
from repro.runtime.pool import FORCE_POOL_ENV
from repro.serve.service import DecisionRequest, DecisionService, ServiceConfig
from repro.serve.shard import ProcessShard, SerialShard, make_shards, shard_for


def _request(device="phone-0", mpki=2.0):
    return DecisionRequest(
        device_id=device,
        page=page_by_name("amazon").features,
        corunner_mpki=mpki,
        corunner_utilization=0.5,
        temperature_c=48.0,
    )


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for device in range(50):
                index = shard_for(f"device-{device:04d}", shards)
                assert 0 <= index < shards
                assert index == shard_for(f"device-{device:04d}", shards)

    def test_single_shard_owns_everything(self):
        assert shard_for("anything", 1) == 0

    def test_partition_actually_spreads(self):
        owners = {shard_for(f"device-{d:04d}", 4) for d in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            shard_for("x", 0)


class TestSerialShard:
    def test_dispatch_then_collect_round_trip(self, small_predictor):
        shard = SerialShard(0, small_predictor, ServiceConfig())
        shard.dispatch([10, 11], [_request("a"), _request("b")], now=0.0)
        assert shard.inflight() == 1
        [(tickets, responses)] = shard.collect()
        assert tickets == [10, 11]
        assert [r.accepted for r in responses] == [True, True]
        assert shard.inflight() == 0
        assert shard.collect() == []

    def test_answers_match_a_plain_service(self, small_predictor):
        requests = [_request(f"d{i}", mpki=float(i)) for i in range(6)]
        shard = SerialShard(0, small_predictor, ServiceConfig())
        shard.dispatch(list(range(6)), requests, now=0.0)
        [(_, responses)] = shard.drain()
        expected = DecisionService(small_predictor).decide(requests, now=0.0)
        assert [r.fopt_hz for r in responses] == [r.fopt_hz for r in expected]

    def test_stats_report_the_backing_service(self, small_predictor):
        shard = SerialShard(0, small_predictor, ServiceConfig())
        shard.dispatch([0], [_request("a")], now=0.0)
        shard.drain()
        stats, sessions = shard.stats()
        assert stats.batches_total == 1
        assert sessions == 1


@pytest.fixture
def force_pool(monkeypatch):
    """Run real worker processes even on single-CPU hosts."""
    monkeypatch.setenv(FORCE_POOL_ENV, "1")


class TestProcessShard:
    def _shard(self, predictor, **kwargs):
        return ProcessShard(0, predictor, ServiceConfig(), **kwargs)

    def test_round_trip_matches_serial(self, small_predictor, force_pool):
        requests = [_request(f"d{i}", mpki=float(i)) for i in range(5)]
        shard = self._shard(small_predictor)
        try:
            shard.dispatch(list(range(5)), requests, now=0.0)
            [(tickets, responses)] = shard.drain()
        finally:
            shard.close()
        reference = DecisionService(small_predictor).decide(requests, now=0.0)
        assert tickets == [0, 1, 2, 3, 4]
        assert [r.fopt_hz for r in responses] == [r.fopt_hz for r in reference]

    def test_worker_runs_in_another_process(self, small_predictor, force_pool):
        shard = self._shard(small_predictor)
        try:
            assert shard.worker._process.pid != os.getpid()
            shard.dispatch([0], [_request()], now=0.0)
            shard.drain()
        finally:
            shard.close()

    def test_crash_mid_flight_recovers_with_same_answers(
        self, small_predictor, force_pool
    ):
        requests = [_request(f"d{i}", mpki=float(i)) for i in range(4)]
        shard = self._shard(small_predictor, backoff_s=0.0)
        try:
            # Kill the worker before it can answer; the drain must spot
            # the EOF, respawn, re-dispatch, and still return the exact
            # reference bits (retry is idempotent by construction).
            shard.worker._process.kill()
            shard.worker._process.join(5.0)
            shard.dispatch(list(range(4)), requests, now=0.0)
            [(tickets, responses)] = shard.drain()
        finally:
            shard.close()
        reference = DecisionService(small_predictor).decide(requests, now=0.0)
        assert shard.restarts >= 1
        assert tickets == [0, 1, 2, 3]
        assert [r.fopt_hz for r in responses] == [r.fopt_hz for r in reference]

    def test_crashes_exhaust_bounded_attempts(self, small_predictor, force_pool):
        shard = self._shard(small_predictor, max_attempts=1, backoff_s=0.0)
        try:
            shard.worker._process.kill()
            shard.worker._process.join(5.0)
            # The recovery may trip in dispatch (broken pipe on send) or
            # in drain (EOF on poll) depending on pipe buffering; both
            # must give up after the single allowed attempt.
            with pytest.raises(JobError, match="attempts"):
                shard.dispatch([0], [_request()], now=0.0)
                shard.drain()
        finally:
            shard.close()

    def test_worker_error_reply_raises(self, small_predictor, force_pool):
        shard = self._shard(small_predictor)
        try:
            # A non-request payload makes the worker's decide raise; the
            # error comes back as a reply, not a hang or a crash.
            shard.dispatch([0], [object()], now=0.0)
            with pytest.raises(JobError, match="worker error"):
                shard.drain()
        finally:
            shard.close()

    def test_stats_demand_a_drained_shard(self, small_predictor, force_pool):
        shard = self._shard(small_predictor)
        try:
            shard.dispatch([0], [_request()], now=0.0)
            with pytest.raises(RuntimeError, match="drained"):
                shard.stats()
            shard.drain()
            stats, sessions = shard.stats()
            assert stats.batches_total == 1
            assert sessions == 1
        finally:
            shard.close()


def _varied(count=6):
    return [_request(f"d{i}", mpki=0.5 + 1.1 * i) for i in range(count)]


class TestModelSwap:
    """The swap verb is a batch boundary: it never changes the decisions
    of tickets already handed to the shard."""

    def test_serial_swap_respects_dispatch_order(
        self, small_predictor, alt_predictor
    ):
        requests = _varied()
        old = DecisionService(small_predictor).decide(requests, now=0.0)
        new = DecisionService(alt_predictor).decide(requests, now=0.0)
        assert [r.fopt_hz for r in old] != [r.fopt_hz for r in new]
        shard = SerialShard(0, small_predictor, ServiceConfig())
        shard.dispatch(list(range(6)), requests, now=0.0)
        shard.swap(alt_predictor)
        shard.dispatch(list(range(6, 12)), requests, now=1.0)
        [(_, before), (_, after)] = shard.drain()
        assert [r.fopt_hz for r in before] == [r.fopt_hz for r in old]
        assert [r.fopt_hz for r in after] == [r.fopt_hz for r in new]

    def test_pipe_swap_lands_behind_inflight_batches(
        self, small_predictor, alt_predictor, force_pool
    ):
        requests = _varied()
        old = DecisionService(small_predictor).decide(requests, now=0.0)
        new = DecisionService(alt_predictor).decide(requests, now=0.0)
        shard = ProcessShard(0, small_predictor, ServiceConfig())
        try:
            # The batch is in the pipe, not yet collected, when the swap
            # verb goes out; FIFO ordering must keep it on the old model.
            shard.dispatch(list(range(6)), requests, now=0.0)
            shard.swap(alt_predictor)
            shard.dispatch(list(range(6, 12)), requests, now=1.0)
            results = shard.drain()
        finally:
            shard.close()
        by_ticket = {tickets[0]: responses for tickets, responses in results}
        assert [r.fopt_hz for r in by_ticket[0]] == [r.fopt_hz for r in old]
        assert [r.fopt_hz for r in by_ticket[6]] == [r.fopt_hz for r in new]

    def test_crash_recovery_replays_the_swap_in_order(
        self, small_predictor, alt_predictor, force_pool
    ):
        requests = _varied()
        old = DecisionService(small_predictor).decide(requests, now=0.0)
        new = DecisionService(alt_predictor).decide(requests, now=0.0)
        shard = ProcessShard(0, small_predictor, ServiceConfig(), backoff_s=0.0)
        try:
            shard.dispatch(list(range(6)), requests, now=0.0)
            shard.swap(alt_predictor)
            shard.dispatch(list(range(6, 12)), requests, now=1.0)
            # Kill the worker with all three verbs potentially unanswered:
            # recovery must replay batch, swap, batch in insertion order.
            shard.worker._process.kill()
            shard.worker._process.join(5.0)
            results = shard.drain()
        finally:
            shard.close()
        assert shard.restarts >= 1
        by_ticket = {tickets[0]: responses for tickets, responses in results}
        assert [r.fopt_hz for r in by_ticket[0]] == [r.fopt_hz for r in old]
        assert [r.fopt_hz for r in by_ticket[6]] == [r.fopt_hz for r in new]


class TestMakeShards:
    def test_builds_the_requested_kind(self, small_predictor, monkeypatch):
        serial = make_shards(
            small_predictor, ServiceConfig(), shards=3, process_based=False
        )
        assert [type(s) for s in serial] == [SerialShard] * 3
        monkeypatch.setenv(FORCE_POOL_ENV, "1")
        procs = make_shards(
            small_predictor, ServiceConfig(), shards=2, process_based=True
        )
        try:
            assert [type(s) for s in procs] == [ProcessShard] * 2
            assert [s.index for s in procs] == [0, 1]
        finally:
            for shard in procs:
                shard.close()
