"""Batched decisions must be bit-identical to the scalar governor.

The acceptance contract of :mod:`repro.serve`: for any request, the
service's ``fopt_hz`` equals -- with ``==``, not approximately -- what
a per-device :class:`~repro.core.dora.DoraGovernor` built from the
same bundle would program, across the evaluation pages, a grid of
interference/thermal conditions, both leakage ablations and multiple
QoS margins.
"""

import itertools

import pytest

from repro.browser.pages import page_by_name, page_names
from repro.core.dora import DoraGovernor
from repro.serve.service import DecisionRequest, DecisionService, ServiceConfig
from repro.sim.governor import RunContext
from repro.soc.counters import CoreCounters, CounterSample

MPKI_GRID = (0.0, 2.0, 5.0, 12.0, 20.0)
UTILIZATION_GRID = (0.0, 0.5, 1.0)
TEMPERATURE_GRID = (35.0, 50.0, 65.0)
DEADLINE_GRID = (0.6, 3.0)


def _sample(mpki, utilization, temperature_c):
    """A counter sample whose co-runner core reads exactly (mpki, util)."""
    window_s = 0.1
    return CounterSample(
        window_s=window_s,
        per_core={
            2: CoreCounters(
                busy_s=utilization * window_s,
                instructions=1000.0,
                l2_accesses=max(1.0, 2.0 * mpki),
                l2_misses=mpki,
            )
        },
        freq_hz=1.19e9,
        soc_temperature_c=temperature_c,
        core_temperatures_c={2: temperature_c},
    )


def _conditions(pages):
    for page_name, mpki, util, temp, deadline in itertools.product(
        pages, MPKI_GRID, UTILIZATION_GRID, TEMPERATURE_GRID, DEADLINE_GRID
    ):
        yield page_name, mpki, util, temp, deadline


@pytest.mark.parametrize("include_leakage", [True, False])
@pytest.mark.parametrize("qos_margin", [0.0, 0.15])
def test_batched_fopt_bit_identical_to_scalar_governor(
    small_predictor, include_leakage, qos_margin
):
    pages = page_names()[:6]
    governor = DoraGovernor(
        predictor=small_predictor,
        include_leakage=include_leakage,
        qos_margin=qos_margin,
    )
    service = DecisionService(
        small_predictor,
        config=ServiceConfig(
            max_batch_size=64,
            include_leakage=include_leakage,
            qos_margin=qos_margin,
        ),
    )

    requests = []
    scalar_fopts = []
    for page_name, mpki, util, temp, deadline in _conditions(pages):
        page = page_by_name(page_name).features
        context = RunContext(
            spec=small_predictor.spec,
            deadline_s=deadline,
            page_features=page,
        )
        scalar_fopts.append(
            governor.decide(_sample(mpki, util, temp), context)
        )
        requests.append(
            DecisionRequest(
                device_id=f"{page_name}-{len(requests)}",
                page=page,
                corunner_mpki=mpki,
                corunner_utilization=util,
                temperature_c=temp,
                deadline_s=deadline,
            )
        )

    responses = service.decide(requests)
    assert len(responses) == len(requests)
    served = [response.fopt_hz for response in responses]
    assert served == scalar_fopts  # exact float equality, every request


def test_sample_fixture_reads_back_exactly():
    """The synthetic counter sample encodes (mpki, util) losslessly."""
    sample = _sample(7.5, 0.62, 55.0)
    assert sample.mpki_of_cores([2]) == 7.5
    assert sample.utilization_of_cores([2]) == pytest.approx(0.62)
    assert sample.soc_temperature_c == 55.0


def test_traces_reproduce_the_scalar_winning_row(small_predictor):
    """Accepted traces carry the exact winning prediction row."""
    governor = DoraGovernor(predictor=small_predictor)
    service = DecisionService(small_predictor)
    page = page_by_name("espn").features
    context = RunContext(
        spec=small_predictor.spec, deadline_s=3.0, page_features=page
    )
    governor.decide(_sample(6.0, 0.8, 58.0), context)
    winning = next(
        p for p in governor.last_table if p.freq_hz == governor.last_fopt_hz
    )

    [response] = service.decide(
        [
            DecisionRequest(
                device_id="espn-0",
                page=page,
                corunner_mpki=6.0,
                corunner_utilization=0.8,
                temperature_c=58.0,
                deadline_s=3.0,
            )
        ]
    )
    assert response.accepted
    assert response.fopt_hz == winning.freq_hz
    assert response.trace.load_time_s == winning.load_time_s
    assert response.trace.power_w == winning.power_w
    assert response.trace.feasible


def test_rejected_requests_answer_the_infeasible_fallback(small_predictor):
    """Admission rejection returns exactly Algorithm 1's fmax answer."""
    governor = DoraGovernor(predictor=small_predictor)
    service = DecisionService(small_predictor)
    page = page_by_name("amazon").features
    tight = 0.02  # below the 50 ms load-time floor: provably infeasible
    context = RunContext(
        spec=small_predictor.spec, deadline_s=tight, page_features=page
    )
    scalar = governor.decide(_sample(0.0, 0.0, 45.0), context)

    [response] = service.decide(
        [
            DecisionRequest(
                device_id="amazon-0",
                page=page,
                corunner_mpki=0.0,
                corunner_utilization=0.0,
                temperature_c=45.0,
                deadline_s=tight,
            )
        ]
    )
    assert not response.accepted
    assert response.trace is None
    assert response.fopt_hz == scalar
