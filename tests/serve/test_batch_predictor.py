"""Vectorized kernel: batch invariance and agreement with the scalar path."""

import numpy as np
import pytest

from repro.browser.pages import page_by_name, page_names
from repro.models.features import IndependentVariables
from repro.serve.batch_predictor import BatchDoraPredictor, page_feature_matrix


@pytest.fixture(scope="module")
def kernel(small_predictor):
    return small_predictor.batch_kernel()


def _grid(count=9):
    """A small but varied (page, mpki, util, temp) request grid."""
    pages = [page_by_name(name).features for name in page_names()[:count]]
    mpki = np.linspace(0.0, 18.0, count)
    utilization = np.linspace(0.0, 1.0, count)
    temperatures = np.linspace(32.0, 68.0, count)
    return pages, mpki, utilization, temperatures


class TestBatchInvariance:
    def test_batch_of_one_equals_row_of_batch(self, kernel):
        """Every row of a batched pass is bitwise the same alone."""
        pages, mpki, util, temp = _grid()
        load, power = kernel.predict(pages, mpki, util, temp)
        for i, page in enumerate(pages):
            load_1, power_1 = kernel.predict(
                [page], mpki[i : i + 1], util[i : i + 1], temp[i : i + 1]
            )
            assert np.array_equal(load_1[0], load[i])
            assert np.array_equal(power_1[0], power[i])

    def test_batch_invariance_without_leakage(self, kernel):
        pages, mpki, util, temp = _grid(5)
        load, power = kernel.predict(
            pages, mpki, util, temp, include_leakage=False
        )
        for i, page in enumerate(pages):
            load_1, power_1 = kernel.predict(
                [page],
                mpki[i : i + 1],
                util[i : i + 1],
                temp[i : i + 1],
                include_leakage=False,
            )
            assert np.array_equal(load_1[0], load[i])
            assert np.array_equal(power_1[0], power[i])

    def test_prediction_table_matches_kernel_bitwise(
        self, small_predictor, kernel
    ):
        """The scalar sweep is literally the kernel with a batch of one."""
        pages, mpki, util, temp = _grid(4)
        load, power = kernel.predict(pages, mpki, util, temp)
        for i, page in enumerate(pages):
            table = small_predictor.prediction_table(
                page, mpki[i], util[i], temp[i]
            )
            assert [p.load_time_s for p in table] == list(load[i])
            assert [p.power_w for p in table] == list(power[i])
            assert [p.freq_hz for p in table] == list(kernel.freqs_hz)


class TestAgainstScalarReference:
    def test_matches_predict_at_closely(self, small_predictor, kernel):
        """The straight-line scalar path agrees to float tolerance.

        (Not bitwise: predict_at sums the design row in a different
        association order than the vectorized per-row reduction.)
        """
        page = page_by_name("msn").features
        load, power = kernel.predict(
            [page], np.array([4.0]), np.array([0.7]), np.array([51.0])
        )
        for j, freq_hz in enumerate(kernel.freqs_hz):
            reference = small_predictor.predict_at(
                page, 4.0, 0.7, 51.0, float(freq_hz)
            )
            assert load[0, j] == pytest.approx(reference.load_time_s, rel=1e-9)
            assert power[0, j] == pytest.approx(reference.power_w, rel=1e-9)

    def test_leakage_matrix_matches_fitted_model(
        self, small_predictor, kernel
    ):
        temps = np.array([30.0, 47.5, 66.0])
        matrix = kernel.leakage_matrix(temps)
        states = [
            small_predictor.spec.state_for(f) for f in kernel.freqs_hz
        ]
        for i, temp_c in enumerate(temps):
            for j, state in enumerate(states):
                expected = small_predictor.leakage_model.predict(
                    state.voltage_v, float(temp_c)
                )
                assert matrix[i, j] == pytest.approx(expected, rel=1e-12)

    def test_feature_matrix_rows_are_table_i_rows(
        self, small_predictor, kernel
    ):
        """Flat row r*F+f is exactly IndependentVariables for (r, f)."""
        pages, mpki, util, _ = _grid(3)
        matrix = kernel.feature_matrix(
            page_feature_matrix(pages), mpki[:3], util[:3]
        )
        count = kernel.num_candidates
        for r in range(3):
            for f, freq_hz in enumerate(kernel.freqs_hz):
                row = small_predictor.row_for(
                    pages[r], mpki[r], util[r], float(freq_hz)
                )
                assert np.array_equal(
                    matrix[r * count + f], np.asarray(row.as_array())
                )


class TestValidation:
    def test_rejects_mismatched_shapes(self, kernel):
        pages = [page_by_name("amazon").features] * 2
        with pytest.raises(ValueError, match="corunner_mpki"):
            kernel.predict(
                pages, np.zeros(3), np.zeros(2), np.full(2, 45.0)
            )

    def test_rejects_negative_mpki(self, kernel):
        pages = [page_by_name("amazon").features]
        with pytest.raises(ValueError, match="MPKI"):
            kernel.predict(
                pages, np.array([-0.1]), np.zeros(1), np.full(1, 45.0)
            )

    def test_rejects_out_of_range_utilization(self, kernel):
        pages = [page_by_name("amazon").features]
        with pytest.raises(ValueError, match="utilization"):
            kernel.predict(
                pages, np.zeros(1), np.array([1.2]), np.full(1, 45.0)
            )

    def test_rejects_sub_absolute_zero_temperature(self, kernel):
        with pytest.raises(ValueError, match="absolute zero"):
            kernel.leakage_matrix(np.array([-300.0]))

    def test_page_matrix_shape_checked(self):
        with pytest.raises(ValueError, match="R, 5"):
            page_feature_matrix(np.zeros((2, 4)))

    def test_empty_candidate_set_rejected(self, small_predictor):
        with pytest.raises(ValueError, match="candidate"):
            BatchDoraPredictor(
                spec=small_predictor.spec,
                load_time_surfaces=small_predictor.load_time_model.surfaces,
                power_surfaces=small_predictor.power_model.surfaces,
                leakage_parameters=small_predictor.leakage_model.parameters,
                candidate_freqs_hz=(),
            )
