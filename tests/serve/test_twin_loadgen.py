"""Digital-twin load source: live fleet traces into the service stack.

The twin path must be a drop-in for the pre-harvested one: because
fleet rows are bit-identical to single-device runs,
:func:`~repro.serve.loadgen.twin_traces` reproduces
:func:`~repro.serve.loadgen.harvest_traces` exactly, and replays over
:func:`~repro.serve.loadgen.twin_request_schedule` serve identical
fopt streams -- only the virtual arrival process changes.
"""

import json

import pytest

from repro.experiments.suite import all_combos
from repro.serve.loadgen import (
    FleetLoadGenerator,
    LoadgenConfig,
    harvest_traces,
    request_stream,
    run_fleet_bench,
    scalar_decision_baseline,
    twin_request_schedule,
    twin_traces,
)

_COMBOS = all_combos()[:3]


@pytest.fixture(scope="module")
def twin(fast_config):
    return twin_traces(combos=_COMBOS, config=fast_config)


class TestTwinTraces:
    def test_matches_the_harvested_traces_exactly(self, fast_config, twin):
        harvested = harvest_traces(combos=_COMBOS, config=fast_config)
        assert twin == harvested

    def test_is_deterministic(self, fast_config, twin):
        assert twin_traces(combos=_COMBOS, config=fast_config) == twin

    def test_observations_carry_live_timestamps(self, twin):
        for trace in twin:
            times = [obs.time_s for obs in trace.observations]
            assert times == sorted(times)
            assert times[-1] > 0.0

    def test_exposes_the_fleet_stage_breakdown(self, fast_config, twin):
        from repro.sim.fleet_engine import _STAGES

        breakdown: dict[str, float] = {}
        traces = twin_traces(
            combos=_COMBOS, config=fast_config, stage_seconds=breakdown
        )
        assert traces == twin
        assert set(breakdown) == set(_STAGES)
        assert all(seconds >= 0.0 for seconds in breakdown.values())


class TestTwinSchedule:
    CONFIG = LoadgenConfig(
        devices=8,
        requests=64,
        target_qps=50000,
        revisit_period=4,
        tight_deadline_every=10,
    )

    def test_same_seed_same_request_stream(self, fast_config):
        first = twin_request_schedule(
            twin_traces(combos=_COMBOS, config=fast_config), self.CONFIG
        )
        second = twin_request_schedule(
            twin_traces(combos=_COMBOS, config=fast_config), self.CONFIG
        )
        assert first == second

    def test_arrivals_are_sorted_and_span_the_offered_load(self, twin):
        schedule = twin_request_schedule(twin, self.CONFIG)
        arrivals = [arrival for arrival, _ in schedule]
        assert len(schedule) == self.CONFIG.requests
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        assert arrivals[-1] == pytest.approx(
            self.CONFIG.requests / self.CONFIG.target_qps
        )

    def test_carries_the_harvest_streams_request_contents(
        self, fast_config, twin
    ):
        harvested = request_stream(
            harvest_traces(combos=_COMBOS, config=fast_config), self.CONFIG
        )
        scheduled = [request for _, request in twin_request_schedule(twin, self.CONFIG)]

        def key(request):
            return (
                request.device_id,
                request.corunner_mpki,
                request.corunner_utilization,
                request.temperature_c,
                request.deadline_s,
            )

        assert sorted(map(key, scheduled)) == sorted(map(key, harvested))

    def test_rejects_empty_traces(self):
        with pytest.raises(ValueError, match="at least one"):
            twin_request_schedule([], self.CONFIG)


class TestTwinReplay:
    def test_scheduled_replay_matches_the_scalar_baseline(
        self, small_predictor, twin
    ):
        config = LoadgenConfig(
            devices=6, requests=48, target_qps=50000, max_batch_size=8
        )
        schedule = twin_request_schedule(twin, config)
        report = FleetLoadGenerator(small_predictor, config).run(
            twin, schedule=schedule
        )
        assert len(report.responses) == 48
        scalar_fopts, _ = scalar_decision_baseline(
            small_predictor, [request for _, request in schedule]
        )
        assert report.fopts_hz() == scalar_fopts

    def test_uniform_replay_is_unchanged_by_the_schedule_hook(
        self, small_predictor, twin
    ):
        config = LoadgenConfig(devices=4, requests=32, target_qps=50000)
        report = FleetLoadGenerator(small_predictor, config).run(twin)
        scalar_fopts, _ = scalar_decision_baseline(
            small_predictor, request_stream(twin, config)
        )
        assert report.fopts_hz() == scalar_fopts


class TestTwinFleetBench:
    def test_zero_mismatches_vs_the_harvest_path(
        self, small_predictor, fast_config, tmp_path
    ):
        output = tmp_path / "BENCH_fleet.json"
        config = LoadgenConfig(
            devices=8,
            requests=192,
            target_qps=50000,
            max_batch_size=16,
            revisit_period=4,
        )
        twin_result = run_fleet_bench(
            small_predictor,
            config,
            harness_config=fast_config,
            combos=_COMBOS,
            workers=2,
            output_path=output,
            trace_source="twin",
        )
        assert twin_result.trace_source == "twin"
        assert twin_result.fopt_mismatches_vs_single == 0
        assert twin_result.fopt_mismatches_vs_scalar == 0
        record = json.loads(output.read_text())
        assert record["trace_source"] == "twin"
        assert record["fopt_mismatches_vs_single"] == 0
        assert record["fopt_mismatches_vs_scalar"] == 0

        # The pre-harvested path serves the identical decision multiset.
        harvest_result = run_fleet_bench(
            small_predictor,
            config,
            harness_config=fast_config,
            combos=_COMBOS,
            workers=2,
        )
        assert harvest_result.trace_source == "harvest"
        assert sorted(twin_result.fleet_report.fopts_hz()) == sorted(
            harvest_result.fleet_report.fopts_hz()
        )

    def test_rejects_unknown_trace_source(self, small_predictor):
        with pytest.raises(KeyError, match="trace source"):
            run_fleet_bench(small_predictor, trace_source="cloud")
