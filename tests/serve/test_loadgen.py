"""Load generator: trace harvesting, deterministic replay, bench record."""

import json

import pytest

from repro.experiments.suite import all_combos
from repro.serve.loadgen import (
    FleetLoadGenerator,
    LoadgenConfig,
    harvest_traces,
    request_stream,
    run_serve_bench,
    scalar_decision_baseline,
)


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


@pytest.fixture(scope="module")
def traces(fast_config):
    # Module-scoped on purpose: harvesting simulates real page loads.
    # Needs its own monkeypatch -- the function-scoped autouse one is
    # set up after module-scoped fixtures.
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_NO_CACHE", "1")
    try:
        yield harvest_traces(combos=all_combos()[:2], config=fast_config)
    finally:
        patcher.undo()


class TestHarvest:
    def test_traces_carry_real_counter_dynamics(self, traces):
        assert len(traces) == 2
        for trace in traces:
            assert trace.observations  # at least one decision interval
            assert trace.page.dom_nodes > 0
            assert trace.deadline_s == 3.0
            for observation in trace.observations:
                assert observation.corunner_mpki >= 0.0
                assert 0.0 <= observation.corunner_utilization <= 1.0
                assert observation.temperature_c > 0.0
        # A co-runner is actually present in the harvested signal.
        assert any(
            observation.corunner_utilization > 0.0
            for trace in traces
            for observation in trace.observations
        )

    def test_observation_cycles_past_the_end(self, traces):
        trace = traces[0]
        count = len(trace.observations)
        assert trace.observation(count) is trace.observations[0]


class TestStream:
    def test_stream_is_deterministic_and_round_robin(self, traces):
        config = LoadgenConfig(devices=4, requests=12)
        first = request_stream(traces, config)
        second = request_stream(traces, config)
        assert first == second
        assert [r.device_id for r in first[:4]] == [
            f"device-{i:04d}" for i in range(4)
        ]
        assert first[0].device_id == first[4].device_id

    def test_tight_deadline_injection(self, traces):
        config = LoadgenConfig(devices=2, requests=10, tight_deadline_every=5)
        stream = request_stream(traces, config)
        tight = [r for r in stream if r.deadline_s < 0.05]
        assert len(tight) == 2  # requests 5 and 10

    def test_config_validation(self):
        with pytest.raises(ValueError, match="device"):
            LoadgenConfig(devices=0)
        with pytest.raises(ValueError, match="request"):
            LoadgenConfig(requests=0)
        with pytest.raises(ValueError, match="QPS"):
            LoadgenConfig(target_qps=0.0)
        with pytest.raises(ValueError, match="revisit"):
            LoadgenConfig(revisit_period=-1)

    def test_revisit_pattern_repeats_each_observation(self, traces):
        # With a revisit period of 4, each device re-submits the same
        # counter vector four visits in a row before advancing -- the
        # deterministic repeat traffic the fleet skip cache feeds on.
        config = LoadgenConfig(devices=2, requests=24, revisit_period=4)
        stream = request_stream(traces, config)
        visits = [r for r in stream if r.device_id == "device-0000"]
        vectors = [
            (r.corunner_mpki, r.corunner_utilization, r.temperature_c)
            for r in visits
        ]
        for visit in range(1, 4):
            assert vectors[visit] == vectors[0]
        assert vectors[4] != vectors[0]
        assert vectors[5:8] == [vectors[4]] * 3

    def test_revisit_period_one_changes_nothing(self, traces):
        config = LoadgenConfig(devices=2, requests=12)
        plain = request_stream(traces, config)
        unit = request_stream(
            traces, LoadgenConfig(devices=2, requests=12, revisit_period=1)
        )
        assert unit == plain

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            request_stream([], LoadgenConfig())


class TestReplay:
    def test_replay_answers_every_request(self, small_predictor, traces):
        config = LoadgenConfig(
            devices=4, requests=40, target_qps=50000, max_batch_size=8
        )
        report = FleetLoadGenerator(small_predictor, config).run(traces)
        assert len(report.responses) == 40
        assert report.batches >= 5  # 40 accepted / batch cap 8
        assert report.largest_batch <= 8
        assert report.latency.p50_s <= report.latency.p99_s
        assert report.throughput_rps > 0

    def test_replay_matches_scalar_baseline_exactly(
        self, small_predictor, traces
    ):
        config = LoadgenConfig(
            devices=3,
            requests=30,
            target_qps=50000,
            max_batch_size=8,
            tight_deadline_every=7,
        )
        report = FleetLoadGenerator(small_predictor, config).run(traces)
        scalar_fopts, _ = scalar_decision_baseline(
            small_predictor, request_stream(traces, config)
        )
        assert report.fopts_hz() == scalar_fopts
        assert report.rejected == 4  # requests 7, 14, 21, 28

    def test_injected_fleet_service_reports_skips(
        self, small_predictor, traces
    ):
        from repro.serve.fleet import FleetConfig, FleetDecisionService

        config = LoadgenConfig(
            devices=4,
            requests=64,
            target_qps=50000,
            max_batch_size=8,
            revisit_period=4,
        )
        fleet = FleetDecisionService(
            small_predictor,
            FleetConfig(workers=1, service=config.service_config()),
        )
        with fleet:
            report = FleetLoadGenerator(
                small_predictor, config, service=fleet
            ).run(traces)
        assert len(report.responses) == 64
        assert report.skips > 0
        assert report.skip_rate() == pytest.approx(report.skips / 64)
        # The replay is still bit-faithful to the scalar loop.
        scalar_fopts, _ = scalar_decision_baseline(
            small_predictor, request_stream(traces, config)
        )
        assert report.fopts_hz() == scalar_fopts

    def test_plain_service_reports_zero_skips(
        self, small_predictor, traces
    ):
        config = LoadgenConfig(
            devices=4, requests=24, target_qps=50000, revisit_period=4
        )
        report = FleetLoadGenerator(small_predictor, config).run(traces)
        assert report.skips == 0
        assert report.skip_rate() == 0.0


class TestBench:
    def test_run_serve_bench_writes_the_record(
        self, small_predictor, fast_config, tmp_path
    ):
        output = tmp_path / "BENCH_serve.json"
        result = run_serve_bench(
            small_predictor,
            LoadgenConfig(
                devices=4, requests=48, target_qps=50000, max_batch_size=16
            ),
            harness_config=fast_config,
            combos=all_combos()[:2],
            output_path=output,
        )
        assert result.fopt_mismatches == 0
        record = json.loads(output.read_text())
        for key in (
            "latency",
            "throughput_rps",
            "scalar_rps",
            "speedup",
            "mean_batch_size",
        ):
            assert key in record
        for percentile in ("p50_ms", "p95_ms", "p99_ms"):
            assert record["latency"][percentile] >= 0.0
        assert record["requests"] == 48
        assert record["fopt_mismatches"] == 0
