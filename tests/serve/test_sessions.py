"""Device-session registry: touch, decision recording, TTL eviction."""

import pytest

from repro.browser.pages import page_by_name
from repro.serve.sessions import SessionRegistry


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return _Clock()


@pytest.fixture
def registry(clock):
    return SessionRegistry(ttl_s=10.0, clock=clock)


class TestLifecycle:
    def test_touch_creates_then_refreshes(self, registry, clock):
        session = registry.touch("phone-1")
        assert session.created_s == 0.0
        assert len(registry) == 1
        clock.now = 4.0
        again = registry.touch("phone-1")
        assert again is session
        assert again.last_seen_s == 4.0
        assert again.created_s == 0.0

    def test_record_decision_updates_state(self, registry):
        page = page_by_name("amazon").features
        session = registry.record_decision(
            "phone-1",
            page=page,
            corunner_mpki=3.0,
            corunner_utilization=0.4,
            temperature_c=52.0,
            freq_hz=1.19e9,
        )
        assert session.page is page
        assert session.current_freq_hz == 1.19e9
        assert session.decisions == 1
        assert session.rejections == 0

    def test_record_rejection_counts(self, registry):
        registry.record_rejection("phone-2")
        registry.record_rejection("phone-2")
        assert registry.get("phone-2").rejections == 2

    def test_contains_and_active_ids(self, registry):
        registry.touch("a")
        registry.touch("b")
        assert "a" in registry
        assert "missing" not in registry
        assert registry.active_ids() == ("a", "b")


class TestTtlEviction:
    def test_silent_sessions_expire(self, registry, clock):
        registry.touch("old")
        clock.now = 8.0
        registry.touch("fresh")
        clock.now = 11.0  # old silent for 11 s > 10 s TTL, fresh for 3 s
        assert registry.evict_expired() == ("old",)
        assert "old" not in registry
        assert "fresh" in registry
        assert registry.evicted_total == 1

    def test_activity_resets_the_clock(self, registry, clock):
        registry.touch("busy")
        clock.now = 9.0
        registry.touch("busy")
        clock.now = 15.0  # 6 s since last touch: still live
        assert registry.evict_expired() == ()

    def test_boundary_is_exclusive(self, registry, clock):
        registry.touch("edge")
        clock.now = 10.0  # exactly the TTL: not yet expired
        assert registry.evict_expired() == ()
        clock.now = 10.0001
        assert registry.evict_expired() == ("edge",)

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError, match="TTL"):
            SessionRegistry(ttl_s=0.0)

    def test_eviction_order_is_oldest_activity_first(self, registry, clock):
        for index, device in enumerate(("c", "a", "b")):
            clock.now = float(index)
            registry.touch(device)
        clock.now = 100.0
        assert registry.evict_expired() == ("c", "a", "b")

    def test_refresh_keeps_a_fetched_session_alive(self, registry, clock):
        session = registry.touch("phone-1")
        clock.now = 8.0
        registry.refresh(session, clock.now)
        assert session.last_seen_s == 8.0
        clock.now = 15.0  # 7 s since the refresh: inside the TTL
        assert registry.evict_expired() == ()
        clock.now = 19.0
        assert registry.evict_expired() == ("phone-1",)

    def test_anchor_fields_are_recorded(self, registry):
        page = page_by_name("amazon").features
        anchor = object()
        session = registry.record_decision(
            "phone-1",
            page=page,
            corunner_mpki=3.0,
            corunner_utilization=0.4,
            temperature_c=52.0,
            freq_hz=1.19e9,
            deadline_s=2.5,
            response=anchor,
        )
        assert session.deadline_s == 2.5
        assert session.last_response is anchor
        # Omitting them on a later decision leaves both untouched, so a
        # plain (cacheless) service never clears fleet anchors.
        registry.record_decision(
            "phone-1",
            page=page,
            corunner_mpki=3.5,
            corunner_utilization=0.4,
            temperature_c=52.0,
            freq_hz=1.19e9,
        )
        assert session.deadline_s == 2.5
        assert session.last_response is anchor


class TestLiveReads:
    """TTL enforcement at read time: eviction is lazy, ``live`` is not."""

    def test_live_inside_the_ttl(self, registry, clock):
        session = registry.touch("phone-1")
        clock.now = 9.0
        assert registry.live("phone-1") is session

    def test_boundary_matches_the_sweeper(self, registry, clock):
        # Exactly the TTL of silence: the sweeper keeps it, so a read
        # must too -- the two rules share the exclusive boundary.
        registry.touch("edge")
        clock.now = 10.0
        assert registry.live("edge") is not None
        clock.now = 10.0001
        assert registry.live("edge") is None

    def test_expired_session_is_dead_before_eviction_runs(
        self, registry, clock
    ):
        registry.touch("phone-1")
        clock.now = 11.0
        # The sweeper has not run: the store still holds the session...
        assert registry.get("phone-1") is not None
        # ... but a TTL-aware read must not resurrect it.  This is the
        # skip-cache staleness hole: lookup via ``get`` would replay an
        # anchor the TTL already declared dead.
        assert registry.live("phone-1") is None

    def test_unknown_device(self, registry):
        assert registry.live("missing") is None

    def test_explicit_now_overrides_the_clock(self, registry, clock):
        registry.touch("phone-1")
        clock.now = 50.0
        assert registry.live("phone-1", now=5.0) is not None


class TestAnchorClearing:
    def test_clear_anchors_counts_only_anchored_sessions(self, registry):
        page = page_by_name("amazon").features
        registry.record_decision(
            "anchored",
            page=page,
            corunner_mpki=3.0,
            corunner_utilization=0.4,
            temperature_c=52.0,
            freq_hz=1.19e9,
            response=object(),
        )
        registry.record_decision(
            "plain",
            page=page,
            corunner_mpki=3.0,
            corunner_utilization=0.4,
            temperature_c=52.0,
            freq_hz=1.19e9,
        )
        assert registry.clear_anchors() == 1
        assert registry.get("anchored").last_response is None
        # Sessions survive; only the replayable responses are dropped.
        assert "anchored" in registry
        assert registry.clear_anchors() == 0


class TestEvictionCost:
    """The satellite-1 bound: eviction work scales with what expired."""

    def test_quiet_polls_examine_nothing(self, registry, clock):
        for device in range(500):
            registry.touch(f"phone-{device}")
        clock.now = 5.0  # everyone inside the TTL
        for _ in range(100):
            assert registry.evict_expired() == ()
        # O(evicted): 100 polls over 500 live sessions never pop a
        # single activity-log entry -- the deque-head check suffices.
        assert registry.expiry_scans == 0

    def test_scans_are_proportional_to_expiries(self, registry, clock):
        for device in range(100):
            registry.touch(f"old-{device}")
        clock.now = 9.0
        for device in range(100):
            registry.touch(f"fresh-{device}")
        clock.now = 11.0  # only the first hundred have aged out
        evicted = registry.evict_expired()
        assert len(evicted) == 100
        assert registry.expiry_scans == 100

    def test_hot_sessions_trigger_compaction(self, registry, clock):
        from repro.serve import sessions as sessions_module

        bound = (
            sessions_module._COMPACTION_FACTOR * 2
            + sessions_module._COMPACTION_SLACK
        )
        registry.touch("hot")
        registry.touch("cold")
        for step in range(10_000):
            clock.now = step * 1e-3
            registry.touch("hot")
        # The activity log stays bounded by live sessions, not touches.
        assert len(registry._expiry) <= bound + 1
        clock.now = 100.0
        assert set(registry.evict_expired()) == {"hot", "cold"}
