"""Fleet router: sharded equivalence, skip cache, telemetry, recovery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.runtime.pool as pool_module
from repro.browser.pages import page_by_name
from repro.runtime.pool import FORCE_POOL_ENV
from repro.serve.fleet import FleetConfig, FleetDecisionService, FleetStats
from repro.serve.service import (
    DecisionRequest,
    DecisionService,
    ServiceConfig,
)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _request(
    device="phone-0", deadline=3.0, mpki=2.0, util=0.5, temp=48.0,
    page="amazon",
):
    return DecisionRequest(
        device_id=device,
        page=page_by_name(page).features,
        corunner_mpki=mpki,
        corunner_utilization=util,
        temperature_c=temp,
        deadline_s=deadline,
    )


def _small_fleet(predictor, clock=None, **overrides):
    """A one-worker fleet with immediate (batch-of-one) evaluation."""
    overrides.setdefault("workers", 1)
    overrides.setdefault("service", ServiceConfig(max_batch_size=1))
    config = FleetConfig(**overrides)
    if clock is None:
        return FleetDecisionService(predictor, config)
    return FleetDecisionService(predictor, config, clock=clock)


class TestConfigValidation:
    def test_worker_floor(self):
        with pytest.raises(ValueError, match="at least one worker"):
            FleetConfig(workers=0)

    def test_tolerance_sign(self):
        with pytest.raises(ValueError, match="non-negative"):
            FleetConfig(skip_tolerance=-0.1)

    def test_attempt_floor(self):
        with pytest.raises(ValueError, match="max_attempts"):
            FleetConfig(max_attempts=0)


class TestEquivalence:
    """ISSUE 5's core contract: same bits as the single service."""

    def _rounds(self):
        rounds = [
            [
                _request(
                    f"dev-{i}",
                    mpki=float(i % 5) + 0.5 * step,
                    page="amazon" if i % 2 else "espn",
                )
                for i in range(8)
            ]
            for step in range(3)
        ]
        # Replay the last round verbatim: pure skip-cache traffic.
        rounds.append(list(rounds[-1]))
        return rounds

    def _reference(self, predictor, rounds):
        single = DecisionService(predictor)
        responses = []
        for step, batch in enumerate(rounds):
            responses.extend(single.decide(batch, now=float(step)))
        return responses

    def test_fopt_matches_across_worker_counts(self, small_predictor):
        rounds = self._rounds()
        expected = self._reference(small_predictor, rounds)
        for workers in (1, 2, 4):
            with FleetDecisionService(
                small_predictor, FleetConfig(workers=workers)
            ) as fleet:
                got = []
                for step, batch in enumerate(rounds):
                    got.extend(fleet.decide(batch, now=float(step)))
                assert fleet.stats.skips_total >= len(rounds[-1])
            assert [r.fopt_hz for r in got] == [r.fopt_hz for r in expected]
            assert [r.accepted for r in got] == [
                r.accepted for r in expected
            ]

    def test_process_shards_match_the_single_service(
        self, small_predictor, monkeypatch
    ):
        monkeypatch.setenv(FORCE_POOL_ENV, "1")
        rounds = self._rounds()
        expected = self._reference(small_predictor, rounds)
        with FleetDecisionService(
            small_predictor, FleetConfig(workers=3)
        ) as fleet:
            assert fleet.mode == "process"
            assert len(fleet.shards) == 3
            got = []
            for step, batch in enumerate(rounds):
                got.extend(fleet.decide(batch, now=float(step)))
            # The replayed round is answered entirely by the cache.
            assert fleet.stats.skips_total >= len(rounds[-1])
        assert [r.fopt_hz for r in got] == [r.fopt_hz for r in expected]


class TestSkipCache:
    def test_second_identical_request_replays_the_anchor(
        self, small_predictor
    ):
        with _small_fleet(small_predictor) as fleet:
            [first] = fleet.decide([_request()], now=0.0)
            [hit] = fleet.decide([_request()], now=1.0)
            assert not first.trace.skipped
            assert hit.trace.skipped
            assert hit.fopt_hz == first.fopt_hz
            assert hit.request_id == 1  # the new ticket, not the anchor's
            assert hit.queue_delay_s == 0.0
            assert fleet.stats.skips_total == 1
            assert fleet.registry.get("phone-0").skips == 1

    def test_drift_within_tolerance_hits(self, small_predictor):
        with _small_fleet(small_predictor, skip_tolerance=0.5) as fleet:
            [first] = fleet.decide([_request(mpki=2.0)], now=0.0)
            [hit] = fleet.decide([_request(mpki=2.3)], now=1.0)
            assert hit.trace.skipped
            assert hit.fopt_hz == first.fopt_hz

    def test_zero_tolerance_requires_exact_equality(self, small_predictor):
        with _small_fleet(small_predictor, skip_tolerance=0.0) as fleet:
            fleet.decide([_request(mpki=2.0)], now=0.0)
            [miss] = fleet.decide([_request(mpki=2.0 + 1e-9)], now=1.0)
            assert not miss.trace.skipped
            assert fleet.stats.skips_total == 0

    def test_drift_beyond_tolerance_reevaluates(self, small_predictor):
        with _small_fleet(small_predictor, skip_tolerance=0.1) as fleet:
            fleet.decide([_request(mpki=2.0)], now=0.0)
            [miss] = fleet.decide([_request(mpki=2.5)], now=1.0)
        [fresh] = DecisionService(small_predictor).decide(
            [_request(mpki=2.5)], now=0.0
        )
        assert not miss.trace.skipped
        assert miss.fopt_hz == fresh.fopt_hz

    def test_deadline_change_misses(self, small_predictor):
        with _small_fleet(small_predictor, skip_tolerance=0.5) as fleet:
            fleet.decide([_request(deadline=3.0)], now=0.0)
            [miss] = fleet.decide([_request(deadline=2.0)], now=1.0)
            assert not miss.trace.skipped

    def test_page_change_misses(self, small_predictor):
        with _small_fleet(small_predictor, skip_tolerance=0.5) as fleet:
            fleet.decide([_request(page="amazon")], now=0.0)
            [miss] = fleet.decide([_request(page="espn")], now=1.0)
            assert not miss.trace.skipped

    def test_rejections_neither_anchor_nor_clobber(self, small_predictor):
        with _small_fleet(small_predictor) as fleet:
            # A rejection before any anchor: the next valid request is
            # evaluated, not replayed.
            fleet.decide([_request(deadline=0.02)], now=0.0)
            [first] = fleet.decide([_request()], now=1.0)
            assert not first.trace.skipped
            # A rejection after an anchor leaves the anchor intact: the
            # exact repeat still hits.
            fleet.decide([_request(deadline=0.02)], now=2.0)
            [hit] = fleet.decide([_request()], now=3.0)
            assert hit.trace.skipped
            assert hit.fopt_hz == first.fopt_hz

    def test_anchor_expires_with_the_session(self, small_predictor):
        clock = _Clock()
        fleet = _small_fleet(
            small_predictor,
            clock=clock,
            service=ServiceConfig(max_batch_size=1, session_ttl_s=5.0),
        )
        with fleet:
            [first] = fleet.decide([_request("gone")])
            clock.now = 20.0
            fleet.decide([_request("other")])  # the flush evicts "gone"
            assert "gone" not in fleet.registry
            [again] = fleet.decide([_request("gone")])
            assert not again.trace.skipped  # re-evaluated from scratch
            assert fleet.stats.skips_total == 0
            assert again.fopt_hz == first.fopt_hz  # same vector, same bits

    def test_returning_device_never_replays_a_stale_anchor(
        self, small_predictor
    ):
        """Regression: a device returning after more than a TTL of
        silence must re-evaluate, even though lazy eviction has not
        removed its session yet."""
        clock = _Clock()
        fleet = _small_fleet(
            small_predictor,
            clock=clock,
            service=ServiceConfig(max_batch_size=1, session_ttl_s=5.0),
        )
        with fleet:
            request = _request("sleeper")
            [first] = fleet.decide([request])
            clock.now = 5.0  # exactly the TTL: the anchor is still live
            [hit] = fleet.decide([request])
            assert hit.trace.skipped
            clock.now = 11.0  # silent past the TTL since the refresh
            [stale] = fleet.decide([request])
            assert not stale.trace.skipped  # re-evaluated, not replayed
            assert stale.fopt_hz == first.fopt_hz  # same vector, same bits
            # The fresh evaluation re-anchors: the *next* request hits.
            [again] = fleet.decide([request])
            assert again.trace.skipped

    @given(
        mpki=st.floats(0.0, 20.0),
        util=st.floats(0.0, 1.0),
        temp=st.floats(20.0, 80.0),
        tolerance=st.sampled_from([0.0, 1e-9, 1e-3, 0.5]),
        page=st.sampled_from(["amazon", "espn"]),
    )
    def test_hits_are_bit_equal_to_full_evaluation(
        self, small_predictor, mpki, util, temp, tolerance, page
    ):
        """Property: a replayed response carries exactly the bits a full
        re-evaluation of the same vector would produce, at any
        tolerance."""
        request = _request(mpki=mpki, util=util, temp=temp, page=page)
        with _small_fleet(
            small_predictor, skip_tolerance=tolerance
        ) as fleet:
            [evaluated] = fleet.decide([request], now=0.0)
            [hit] = fleet.decide([request], now=1.0)
            assert fleet.stats.skips_total == 1
        [fresh] = DecisionService(small_predictor).decide(
            [request], now=0.0
        )
        assert hit.trace.skipped
        assert hit.fopt_hz == evaluated.fopt_hz == fresh.fopt_hz
        assert hit.accepted == evaluated.accepted == fresh.accepted

    @given(
        drifts=st.lists(
            st.sampled_from([0.0, 0.0, 0.25, 1.5]), min_size=1, max_size=10
        )
    )
    def test_zero_tolerance_stream_is_lossless(self, small_predictor, drifts):
        """Property: at tolerance 0 the fleet's answer stream is the
        single service's, hit or miss -- the cache only ever absorbs
        exact repeats, which are bit-stable by determinism."""
        mpki, requests = 2.0, []
        for drift in drifts:
            mpki += drift
            requests.append(_request(mpki=mpki))
        with _small_fleet(small_predictor, skip_tolerance=0.0) as fleet:
            got = []
            for step, request in enumerate(requests):
                got.extend(fleet.decide([request], now=float(step)))
            assert fleet.stats.skips_total == sum(
                1 for drift in drifts[1:] if drift == 0.0
            )
        single = DecisionService(small_predictor)
        expected = []
        for step, request in enumerate(requests):
            expected.extend(single.decide([request], now=float(step)))
        assert [r.fopt_hz for r in got] == [r.fopt_hz for r in expected]


class TestServingSurface:
    @pytest.fixture
    def clock(self):
        return _Clock()

    @pytest.fixture
    def fleet(self, small_predictor, clock):
        with FleetDecisionService(
            small_predictor,
            FleetConfig(
                workers=1,
                service=ServiceConfig(max_batch_size=4, max_wait_s=0.01),
            ),
            clock=clock,
        ) as service:
            yield service

    def test_submit_buffers_until_the_batch_fills(self, fleet):
        for i in range(3):
            assert fleet.submit(_request(f"phone-{i}")) == []
        assert fleet.pending() == 3
        responses = fleet.submit(_request("phone-3"))
        assert [r.request_id for r in responses] == [0, 1, 2, 3]
        assert fleet.pending() == 0
        assert fleet.stats.flushes_on_size == 1

    def test_poll_flushes_after_the_wait_budget(self, fleet, clock):
        fleet.submit(_request())
        clock.now = 0.005
        assert fleet.poll() == []
        clock.now = 0.010
        [response] = fleet.poll()
        assert fleet.stats.flushes_on_wait == 1
        assert response.queue_delay_s == pytest.approx(0.010)

    def test_rejection_is_immediate_and_answers_fmax(self, fleet):
        [response] = fleet.submit(_request(deadline=0.02))
        assert not response.accepted
        assert response.trace is None
        assert response.fopt_hz == fleet._fmax_hz
        assert fleet.pending() == 0
        assert fleet.stats.rejected_total == 1
        assert fleet.registry.get("phone-0").rejections == 1

    def test_decide_orders_by_ticket(self, fleet):
        requests = [
            _request("a", mpki=1.0),
            _request("b", deadline=0.02),
            _request("c", mpki=3.0),
            _request("a", mpki=1.0),
        ]
        responses = fleet.decide(requests)
        assert [r.request_id for r in responses] == [0, 1, 2, 3]
        assert [r.device_id for r in responses] == ["a", "b", "c", "a"]
        assert [r.accepted for r in responses] == [True, False, True, True]


class TestTelemetryAndLifecycle:
    def test_merged_stats_fold_in_the_shard_counters(self, small_predictor):
        with FleetDecisionService(
            small_predictor, FleetConfig(workers=2)
        ) as fleet:
            batch = [_request(f"d{i}", mpki=float(i)) for i in range(6)]
            fleet.decide(batch, now=0.0)
            fleet.decide(batch, now=1.0)  # all six replay from the cache
            merged = fleet.merged_stats()
        assert isinstance(merged, FleetStats)
        assert merged.requests_total == 12
        assert merged.skips_total == 6
        assert merged.skip_rate() == pytest.approx(0.5)
        assert merged.accepted_total == 6  # shards only saw the misses
        assert merged.batches_total >= 1
        assert merged.mean_batch_size() > 0
        assert merged.largest_batch <= 6

    def test_serial_collapse_on_a_single_cpu_host(
        self, small_predictor, monkeypatch
    ):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        with FleetDecisionService(
            small_predictor, FleetConfig(workers=4)
        ) as fleet:
            assert fleet.mode == "serial (single-CPU host)"
            # Partitioning pays only with real processes: serial mode
            # routes everything through one backing shard so misses
            # batch together.
            assert len(fleet.shards) == 1

    def test_one_worker_stays_serial(self, small_predictor):
        with FleetDecisionService(
            small_predictor, FleetConfig(workers=1)
        ) as fleet:
            assert fleet.mode.startswith("serial (")

    def test_close_is_idempotent(self, small_predictor):
        fleet = _small_fleet(small_predictor)
        fleet.decide([_request()], now=0.0)
        fleet.close()
        fleet.close()

    def test_crashed_workers_recover_with_identical_bits(
        self, small_predictor, monkeypatch
    ):
        monkeypatch.setenv(FORCE_POOL_ENV, "1")
        requests = [_request(f"d{i}", mpki=float(i)) for i in range(8)]
        expected = DecisionService(small_predictor).decide(
            list(requests), now=0.0
        )
        with FleetDecisionService(
            small_predictor, FleetConfig(workers=2, backoff_s=0.0)
        ) as fleet:
            assert fleet.mode == "process"
            for shard in fleet.shards:
                shard.worker._process.kill()
                shard.worker._process.join(5.0)
            responses = fleet.decide(list(requests), now=0.0)
            assert fleet.worker_restarts() >= 1
        assert [r.fopt_hz for r in responses] == [
            r.fopt_hz for r in expected
        ]
