"""Phased-task state machine tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.task import Task, WorkPhase


def _phase(name="p", instructions=100.0, **kwargs):
    defaults = dict(
        cpi_base=1.0,
        l2_apki=5.0,
        solo_miss_ratio=0.1,
        working_set_bytes=1e6,
    )
    defaults.update(kwargs)
    return WorkPhase(name=name, instructions=instructions, **defaults)


def _task(phases=None, **kwargs):
    return Task(
        task_id=kwargs.pop("task_id", "t"),
        core=kwargs.pop("core", 0),
        phases=phases or (_phase("a", 100.0), _phase("b", 50.0)),
        **kwargs,
    )


class TestAdvance:
    def test_partial_progress_stays_in_phase(self):
        task = _task()
        retired = task.advance(60.0, now_s=0.1)
        assert retired == 60.0
        assert task.current_phase.name == "a"
        assert not task.finished

    def test_crossing_a_phase_boundary(self):
        task = _task()
        task.advance(120.0, now_s=0.1)
        assert task.current_phase.name == "b"
        assert task.instructions_done_in_phase == pytest.approx(20.0)

    def test_finishing_stamps_time_and_truncates_budget(self):
        task = _task()
        retired = task.advance(1000.0, now_s=0.5)
        assert retired == pytest.approx(150.0)
        assert task.finished
        assert task.finish_time_s == 0.5

    def test_finished_task_retires_nothing(self):
        task = _task()
        task.advance(1000.0, now_s=0.5)
        assert task.advance(10.0, now_s=0.6) == 0.0

    def test_looping_task_wraps_and_counts_loops(self):
        task = _task(phases=(_phase("a", 100.0),), looping=True)
        task.advance(250.0, now_s=0.1)
        assert not task.finished
        assert task.loops_completed == 2
        assert task.instructions_done_in_phase == pytest.approx(50.0)

    def test_total_instructions_accumulates(self):
        task = _task()
        task.advance(60.0, now_s=0.1)
        task.advance(60.0, now_s=0.2)
        assert task.total_instructions == pytest.approx(120.0)

    @given(budgets=st.lists(st.floats(0.1, 80.0), min_size=1, max_size=40))
    def test_conservation_of_instructions(self, budgets):
        task = _task()
        total_capacity = sum(p.instructions for p in task.phases)
        retired = sum(task.advance(b, now_s=0.0) for b in budgets)
        assert retired <= total_capacity + 1e-9
        assert retired == pytest.approx(
            min(total_capacity, task.total_instructions), abs=1e-6
        )

    @given(budgets=st.lists(st.floats(0.1, 500.0), min_size=1, max_size=30))
    def test_looping_task_never_finishes(self, budgets):
        task = _task(phases=(_phase("a", 37.0), _phase("b", 13.0)), looping=True)
        for budget in budgets:
            task.advance(budget, now_s=0.0)
        assert not task.finished


class TestLifecycle:
    def test_cancel_marks_finished_without_progress(self):
        task = _task()
        task.cancel(now_s=0.3)
        assert task.finished
        assert task.finish_time_s == 0.3

    def test_cancel_after_finish_keeps_original_stamp(self):
        task = _task()
        task.advance(1000.0, now_s=0.5)
        task.cancel(now_s=9.0)
        assert task.finish_time_s == 0.5

    def test_reset_restores_initial_state(self):
        task = _task()
        task.advance(1000.0, now_s=0.5)
        task.reset()
        assert not task.finished
        assert task.phase_index == 0
        assert task.total_instructions == 0.0

    def test_progress_fraction(self):
        task = _task()
        assert task.progress_fraction() == 0.0
        task.advance(75.0, now_s=0.1)
        assert task.progress_fraction() == pytest.approx(0.5)
        task.advance(1000.0, now_s=0.2)
        assert task.progress_fraction() == 1.0


class TestValidation:
    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            Task(task_id="t", core=0, phases=())

    def test_negative_core_rejected(self):
        with pytest.raises(ValueError):
            _task(core=-1)

    def test_looping_gating_combination_rejected(self):
        with pytest.raises(ValueError):
            _task(looping=True, gating=True)

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            _phase(instructions=0.0)
        with pytest.raises(ValueError):
            _phase(cpi_base=0.0)
        with pytest.raises(ValueError):
            _phase(solo_miss_ratio=1.5)
        with pytest.raises(ValueError):
            _phase(mlp=0.9)
        with pytest.raises(ValueError):
            _phase(capacitance_f=-1.0)
        with pytest.raises(ValueError):
            _phase(l2_apki=-1.0)
        with pytest.raises(ValueError):
            _phase(working_set_bytes=-1.0)
