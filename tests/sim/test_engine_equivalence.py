"""Fast-path vs reference-engine equivalence.

The regime-stepped fast path (:class:`~repro.sim.engine.Engine` with
``engine="fast"``) must be **bit-identical** to the per-step reference
loop (:class:`~repro.sim.engine.ReferenceEngine`): every result scalar,
task summary, governor decision, trace column, completion and phase
stamp compares equal with ``==``, not ``approx``.  That guarantee is
what lets the harness share cached artifacts between the two engines
without a calibration-tag bump.

Two layers of coverage:

* Curated browser workloads across governors x combos x dt x tracing
  (the shapes the experiment campaign actually runs).
* Hypothesis-driven synthetic task sets aimed at the event-snapping
  edge cases: phase boundaries landing mid-regime, switch stalls
  spanning a decision boundary, and the timeout cutting a regime
  short.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser.browser import browser_tasks
from repro.browser.pages import page_by_name
from repro.core.governors import (
    FixedFrequencyGovernor,
    InteractiveGovernor,
    OndemandGovernor,
)
from repro.sim.engine import Engine, EngineConfig, ReferenceEngine
from repro.sim.governor import Governor, RunContext
from repro.sim.task import Task, WorkPhase
from repro.soc.device import Device, DeviceConfig
from repro.soc.dvfs import SwitchCost
from repro.workloads.kernels import kernel_by_name, kernel_task

MIB = 1024 * 1024

_RESULT_FIELDS = (
    "load_time_s",
    "had_gating",
    "duration_s",
    "energy_j",
    "switch_count",
    "switch_stall_s",
    "switch_energy_j",
    "final_temperature_c",
    "avg_temperature_c",
)
_SUMMARY_FIELDS = (
    "instructions",
    "l2_accesses",
    "l2_misses",
    "busy_s",
    "finish_time_s",
    "loops_completed",
)
_TRACE_COLUMNS = (
    "times_s",
    "freqs_hz",
    "total_power_w",
    "core_dynamic_w",
    "memory_w",
    "leakage_w",
    "soc_temperature_c",
)


def assert_bit_identical(ref, fast):
    """Every observable of the two runs compares exactly equal."""
    for name in _RESULT_FIELDS:
        assert getattr(ref, name) == getattr(fast, name), name
    assert set(ref.task_summaries) == set(fast.task_summaries)
    for task_id, expected in ref.task_summaries.items():
        actual = fast.task_summaries[task_id]
        for name in _SUMMARY_FIELDS:
            assert getattr(expected, name) == getattr(actual, name), (
                f"{task_id}.{name}"
            )
    assert ref.decisions.times_s == fast.decisions.times_s
    assert ref.decisions.frequencies_hz == fast.decisions.frequencies_hz
    assert len(ref.trace) == len(fast.trace)
    for column in _TRACE_COLUMNS:
        expected = np.asarray(getattr(ref.trace, column))
        actual = np.asarray(getattr(fast.trace, column))
        assert expected.shape == actual.shape, f"trace.{column}"
        assert np.array_equal(expected, actual), f"trace.{column}"
    assert ref.trace.completions == fast.trace.completions
    assert ref.trace.phase_starts == fast.trace.phase_starts


class Alternator(Governor):
    """Flips between two frequencies every decision.

    Forces a DVFS switch (and its stall) at each interval, so stalls
    regularly straddle the following decision boundary -- the hardest
    case for regime-boundary bookkeeping.
    """

    name = "alternator"
    interval_s = 0.02

    def __init__(
        self, high_hz: float = 2265.6e6, low_hz: float = 1497.6e6
    ) -> None:
        self.high_hz = high_hz
        self.low_hz = low_hz
        self._high = True

    def initial_frequency(self, context: RunContext) -> float:
        return self.high_hz

    def decide(self, sample, context: RunContext) -> float:
        self._high = not self._high
        return self.high_hz if self._high else self.low_hz

    def reset(self) -> None:
        self._high = True


def _governor(name: str) -> Governor:
    if name == "perf":
        return FixedFrequencyGovernor(freq_hz=2265.6e6, label="perf")
    if name == "mid":
        return FixedFrequencyGovernor(freq_hz=1190.4e6, label="mid")
    if name == "interactive":
        return InteractiveGovernor()
    if name == "ondemand":
        return OndemandGovernor()
    if name == "alternator":
        return Alternator()
    raise KeyError(name)


def _browser_run(cls, page, kernel, governor, dt, trace, max_time=60.0):
    device = Device()
    page_obj = page_by_name(page)
    tasks = browser_tasks(page_obj).as_list()
    if kernel is not None:
        tasks.append(kernel_task(kernel_by_name(kernel)))
    engine = cls(
        device=device,
        tasks=tasks,
        governor=_governor(governor),
        context=RunContext(spec=device.spec, page_features=page_obj.features),
        config=EngineConfig(
            dt_s=dt, max_time_s=max_time, record_trace=trace
        ),
    )
    return engine.run()


#: (page, kernel, governor, dt_s, record_trace) -- a slice through the
#: governors x combos x dt x tracing space, curated to keep the suite
#: fast while hitting every governor family and both dt values.
BROWSER_CASES = [
    ("amazon", None, "perf", 0.002, True),
    ("amazon", None, "interactive", 0.002, True),
    ("amazon", None, "ondemand", 0.002, False),
    ("amazon", None, "mid", 0.0017, True),
    ("amazon", "backprop", "perf", 0.002, True),
    ("amazon", "backprop", "interactive", 0.002, False),
    ("amazon", "backprop", "alternator", 0.002, True),
    ("espn", "needleman-wunsch", "interactive", 0.002, True),
    ("espn", "needleman-wunsch", "perf", 0.0017, False),
    ("espn", "needleman-wunsch", "mid", 0.002, True),
]


class TestBrowserWorkloadEquivalence:
    @pytest.mark.parametrize(
        "page,kernel,governor,dt,trace",
        BROWSER_CASES,
        ids=[
            f"{p}+{k or 'solo'}-{g}-dt{dt * 1e3:g}ms-{'tr' if t else 'notr'}"
            for p, k, g, dt, t in BROWSER_CASES
        ],
    )
    def test_fast_matches_reference(self, page, kernel, governor, dt, trace):
        ref = _browser_run(ReferenceEngine, page, kernel, governor, dt, trace)
        fast = _browser_run(Engine, page, kernel, governor, dt, trace)
        assert_bit_identical(ref, fast)

    def test_timeout_run_matches(self):
        """A run cut off by max_time_s times out identically."""
        ref = _browser_run(
            ReferenceEngine, "aliexpress", None, "mid", 0.002, True,
            max_time=0.5,
        )
        fast = _browser_run(
            Engine, "aliexpress", None, "mid", 0.002, True, max_time=0.5
        )
        assert ref.timed_out and fast.timed_out
        assert_bit_identical(ref, fast)

    def test_reference_engine_coerces_its_config(self):
        result = _browser_run(
            ReferenceEngine, "amazon", None, "perf", 0.002, False
        )
        assert result.load_time_s is not None


# ----------------------------------------------------------------------
# Property tests: event snapping on synthetic task sets
# ----------------------------------------------------------------------
phase_strategy = st.builds(
    WorkPhase,
    name=st.just("phase"),
    instructions=st.floats(5e6, 4e8),
    cpi_base=st.floats(0.8, 2.0),
    l2_apki=st.floats(0.0, 60.0),
    solo_miss_ratio=st.floats(0.01, 0.4),
    working_set_bytes=st.floats(0.1 * MIB, 16 * MIB),
    mlp=st.floats(1.0, 2.5),
    capacitance_f=st.floats(0.3e-9, 0.6e-9),
)

#: Small phases finish well inside a 50-step fixed-governor regime, so
#: phase boundaries land mid-regime essentially every run.
small_phase_strategy = st.builds(
    WorkPhase,
    name=st.just("short"),
    instructions=st.floats(2e6, 6e7),
    cpi_base=st.floats(0.8, 2.0),
    l2_apki=st.floats(0.0, 60.0),
    solo_miss_ratio=st.floats(0.01, 0.4),
    working_set_bytes=st.floats(0.1 * MIB, 8 * MIB),
    mlp=st.floats(1.0, 2.5),
    capacitance_f=st.floats(0.3e-9, 0.6e-9),
)


def _synthetic_run(
    cls,
    phases_per_task,
    governor,
    dt=0.002,
    max_time=30.0,
    device_config=None,
    trace=True,
):
    device = Device(device_config) if device_config else Device()
    tasks = [
        Task(
            task_id=f"t{core}",
            core=core,
            phases=tuple(phases),
            gating=(core == 0),
        )
        for core, phases in enumerate(phases_per_task)
    ]
    engine = cls(
        device=device,
        tasks=tasks,
        governor=governor,
        context=RunContext(spec=device.spec),
        config=EngineConfig(
            dt_s=dt, max_time_s=max_time, record_trace=trace
        ),
    )
    return engine.run()


class TestEventSnappingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        phases=st.lists(small_phase_strategy, min_size=1, max_size=4),
        rival=st.lists(small_phase_strategy, min_size=0, max_size=2),
    )
    def test_phase_boundary_mid_regime(self, phases, rival):
        """Short phases force crossings inside would-be regimes."""
        governor = FixedFrequencyGovernor(freq_hz=2265.6e6, label="fixed")
        tasksets = [phases] + ([rival] if rival else [])
        ref = _synthetic_run(ReferenceEngine, tasksets, governor)
        fast = _synthetic_run(Engine, tasksets, governor)
        assert_bit_identical(ref, fast)

    @settings(max_examples=15, deadline=None)
    @given(
        phases=st.lists(phase_strategy, min_size=1, max_size=3),
        stall_ms=st.floats(0.5, 9.5),
    )
    def test_switch_stall_spanning_decision_boundary(self, phases, stall_ms):
        """Long stalls from an every-interval switcher straddle dt
        boundaries and whole decision intervals."""
        config = DeviceConfig(
            switch_cost=SwitchCost(stall_s=stall_ms * 1e-3, energy_j=250e-6)
        )
        ref = _synthetic_run(
            ReferenceEngine, [phases], Alternator(), device_config=config
        )
        fast = _synthetic_run(
            Engine, [phases], Alternator(), device_config=config
        )
        assert_bit_identical(ref, fast)

    @settings(max_examples=15, deadline=None)
    @given(
        phases=st.lists(phase_strategy, min_size=1, max_size=2),
        max_time=st.floats(0.011, 0.35),
    )
    def test_timeout_mid_regime(self, phases, max_time):
        """max_time_s cuts runs short at arbitrary (non-interval)
        points; the fast path must stop on exactly the same step."""
        governor = FixedFrequencyGovernor(freq_hz=729.6e6, label="slow")
        heavy = [
            WorkPhase(
                name="heavy",
                instructions=5e9,
                cpi_base=phase.cpi_base,
                l2_apki=phase.l2_apki,
                solo_miss_ratio=phase.solo_miss_ratio,
                working_set_bytes=phase.working_set_bytes,
                mlp=phase.mlp,
                capacitance_f=phase.capacitance_f,
            )
            for phase in phases
        ]
        ref = _synthetic_run(
            ReferenceEngine, [heavy], governor, max_time=max_time
        )
        fast = _synthetic_run(Engine, [heavy], governor, max_time=max_time)
        assert ref.timed_out and fast.timed_out
        assert_bit_identical(ref, fast)
