"""Batched epoch planner vs per-row scalar ``_plan_regime``.

``test_fleet_engine.py`` anchors fleet rows to the ``ReferenceEngine``
oracle; this module pins the *other* side of the tentpole contract:
the batched planner (SoA event-distance estimate, grouped accumulate,
chained no-op decisions, split thermal paths) must agree bit-for-bit
with the scalar fast path -- the same rows run solo through
:meth:`Engine._plan_regime` -- across random heterogeneous mixes,
including the clamped planning-horizon and cooldown paths.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine_module
import repro.sim.fleet_engine as fleet_module
from repro.core.governors import (
    FixedFrequencyGovernor,
    InteractiveGovernor,
    OndemandGovernor,
)
from repro.sim.fleet_engine import (
    FleetEngine,
    FleetRowSpec,
    build_row_engine,
    heterogeneous_fleet,
)
from tests.sim.test_engine_equivalence import assert_bit_identical
from tests.sim.test_fleet_engine import batched_path


def _mix(rows: int, seed: int, trace_mix: bool) -> tuple[FleetRowSpec, ...]:
    """A heterogeneous fleet, optionally with per-row trace flags."""
    specs = heterogeneous_fleet(rows, seed=seed)
    if trace_mix:
        specs = tuple(
            replace(spec, record_trace=(row % 2 == 0))
            for row, spec in enumerate(specs)
        )
    return specs


@settings(max_examples=10, deadline=None)
@given(
    rows=st.integers(5, 7),
    seed=st.integers(0, 40),
    trace_mix=st.booleans(),
    max_steps=st.sampled_from((None, 6, 17)),
)
def test_batched_planner_matches_scalar_planning(
    rows, seed, trace_mix, max_steps
):
    """Property: a fleet row equals its solo scalar-planned run.

    ``max_steps`` monkeypatches ``_MAX_REGIME_STEPS`` for *both* sides
    (the clamp is an execution-strategy knob, so results must not move)
    -- small values force the clamped seal path, chained-regime caps
    and the cooldown path on every row.
    """
    specs = _mix(rows, seed, trace_mix)
    saved = engine_module._MAX_REGIME_STEPS
    if max_steps is not None:
        engine_module._MAX_REGIME_STEPS = max_steps
    try:
        solo = [build_row_engine(spec).run() for spec in specs]
        with batched_path():
            fleet = FleetEngine(rows=specs).run()
    finally:
        engine_module._MAX_REGIME_STEPS = saved
    for expected, actual in zip(solo, fleet):
        assert_bit_identical(expected, actual)


class TestChainTargets:
    """Eligibility proofs behind decision-spanning chained regimes."""

    def test_fixed_governor_chains_at_its_pin(self):
        engine = build_row_engine(
            FleetRowSpec(page="amazon", governor="fixed", freq_hz=1728.0e6)
        )
        mode, target, anchor = FleetEngine._chain_target(engine)
        assert mode == "fixed"
        assert target == 1728.0e6
        assert anchor == engine.context.spec.state_for(1728.0e6).freq_hz

    def test_interactive_governor_saturates_at_fmax(self):
        engine = build_row_engine(
            FleetRowSpec(page="amazon", governor="interactive")
        )
        assert isinstance(engine.governor, InteractiveGovernor)
        mode, target, anchor = FleetEngine._chain_target(engine)
        fmax = engine.context.spec.max_state.freq_hz
        assert (mode, target, anchor) == ("util", fmax, fmax)

    def test_ondemand_governor_saturates_at_fmax(self):
        engine = build_row_engine(
            FleetRowSpec(page="amazon", governor="ondemand")
        )
        assert isinstance(engine.governor, OndemandGovernor)
        mode, target, anchor = FleetEngine._chain_target(engine)
        fmax = engine.context.spec.max_state.freq_hz
        assert (mode, target, anchor) == ("util", fmax, fmax)

    def test_unknown_governor_kind_never_chains(self):
        engine = build_row_engine(FleetRowSpec(page="amazon"))

        class Custom(FixedFrequencyGovernor):
            pass

        engine.governor = Custom(freq_hz=1728.0e6, label="custom")
        assert FleetEngine._chain_target(engine) is None


class TestChainedRegimes:
    def test_chains_absorb_interior_decisions(self, monkeypatch):
        """Fixed rows actually plan through boundaries (not just may)."""
        specs = tuple(
            FleetRowSpec(
                page=page, governor="fixed", freq_hz=1190.4e6, kernel=kernel
            )
            for page in ("amazon", "espn", "msn")
            for kernel in (None, "srad")
        )
        commits = []
        original = FleetEngine._commit_chain

        def spy(engine, loop, commit):
            commits.append(len(commit[0]))
            return original(engine, loop, commit)

        monkeypatch.setattr(FleetEngine, "_commit_chain", staticmethod(spy))
        with batched_path():
            fleet = FleetEngine(rows=specs).run()
        assert sum(commits) > 0
        solo = [build_row_engine(spec).run() for spec in specs]
        for expected, actual in zip(solo, fleet):
            assert_bit_identical(expected, actual)

    def test_chain_cap_bounds_the_horizon(self):
        """A tiny chain cap still yields bit-identical rows."""
        specs = heterogeneous_fleet(6, seed=3)
        saved = fleet_module._MAX_CHAIN_STEPS
        fleet_module._MAX_CHAIN_STEPS = 8
        try:
            with batched_path():
                fleet = FleetEngine(rows=specs).run()
        finally:
            fleet_module._MAX_CHAIN_STEPS = saved
        solo = [build_row_engine(spec).run() for spec in specs]
        for expected, actual in zip(solo, fleet):
            assert_bit_identical(expected, actual)
