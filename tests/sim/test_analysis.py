"""Trace-analysis tests."""

import pytest

from repro.browser.browser import browser_tasks
from repro.browser.pages import page_by_name
from repro.core.governors import FixedFrequencyGovernor
from repro.sim.analysis import (
    energy_breakdown,
    frequency_timeline,
    phase_breakdown,
    summarize_run,
)
from repro.sim.engine import Engine, EngineConfig
from repro.sim.governor import RunContext
from repro.sim.trace import Trace
from repro.soc.device import Device


@pytest.fixture(scope="module")
def run_result():
    device = Device()
    page = page_by_name("msn")
    tasks = browser_tasks(page).as_list()
    governor = FixedFrequencyGovernor(
        freq_hz=device.spec.max_state.freq_hz, label="fixed"
    )
    engine = Engine(
        device=device,
        tasks=tasks,
        governor=governor,
        context=RunContext(spec=device.spec, page_features=page.features),
        config=EngineConfig(dt_s=0.002, record_trace=True),
    )
    return engine.run()


MAIN = "browser-main:msn"


class TestEnergyBreakdown:
    def test_components_sum_to_measured_energy(self, run_result):
        breakdown = energy_breakdown(run_result.trace)
        # Switch energy is charged separately from the trace integral.
        assert breakdown.total_j == pytest.approx(
            run_result.energy_j - run_result.switch_energy_j, rel=0.01
        )

    def test_all_components_positive(self, run_result):
        breakdown = energy_breakdown(run_result.trace)
        assert breakdown.core_dynamic_j > 0
        assert breakdown.memory_j > 0
        assert breakdown.leakage_j > 0
        assert breakdown.rest_of_device_j > 0

    def test_fractions_sum_to_one(self, run_result):
        breakdown = energy_breakdown(run_result.trace)
        total = sum(
            breakdown.fraction(c)
            for c in ("core_dynamic", "memory", "leakage", "rest_of_device")
        )
        assert total == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            energy_breakdown(Trace())


class TestPhaseBreakdown:
    def test_four_pipeline_phases_in_order(self, run_result):
        phases = phase_breakdown(run_result, MAIN)
        assert [p.name for p in phases] == ["parse", "style", "layout", "paint"]
        starts = [p.start_s for p in phases]
        assert starts == sorted(starts)

    def test_durations_cover_the_load(self, run_result):
        phases = phase_breakdown(run_result, MAIN)
        assert sum(p.duration_s for p in phases) == pytest.approx(
            run_result.load_time_s, abs=0.02
        )

    def test_phase_energies_are_positive_and_bounded(self, run_result):
        phases = phase_breakdown(run_result, MAIN)
        total = sum(p.energy_j for p in phases)
        assert all(p.energy_j > 0 for p in phases)
        assert total <= run_result.energy_j * 1.01

    def test_mean_frequency_matches_fixed_run(self, run_result):
        for phase in phase_breakdown(run_result, MAIN):
            assert phase.mean_freq_hz == pytest.approx(2265.6e6)

    def test_unknown_task_rejected(self, run_result):
        with pytest.raises(ValueError):
            phase_breakdown(run_result, "no-such-task")


class TestFrequencyTimeline:
    def test_fixed_run_has_one_entry(self, run_result):
        timeline = frequency_timeline(run_result.trace)
        assert len(timeline) == 1
        assert timeline[0][1] == pytest.approx(2265.6e6)

    def test_change_points_are_detected(self):
        trace = Trace()
        from repro.soc.power import PowerBreakdown

        breakdown = PowerBreakdown(1.0, 0.1, 0.2, 0.9)
        for time_s, freq in ((0.1, 1e9), (0.2, 1e9), (0.3, 2e9), (0.4, 1e9)):
            trace.record(time_s, freq, breakdown, 50.0)
        timeline = frequency_timeline(trace)
        assert [f for _, f in timeline] == [1e9, 2e9, 1e9]


class TestSummary:
    def test_summary_mentions_the_key_numbers(self, run_result):
        text = summarize_run(run_result, MAIN)
        assert "load=" in text
        assert "energy split" in text
        assert "parse" in text
