"""Discrete-time engine tests."""

import pytest

from repro.browser.browser import browser_tasks
from repro.browser.pages import page_by_name
from repro.core.governors import FixedFrequencyGovernor
from repro.sim.engine import Engine, EngineConfig
from repro.sim.governor import RunContext
from repro.soc.device import Device
from repro.workloads.kernels import kernel_by_name, kernel_task


def _engine(page="amazon", kernel=None, freq=None, dt=0.002, max_time=60.0,
            trace=True, governor=None):
    device = Device()
    spec = device.spec
    page_obj = page_by_name(page)
    tasks = browser_tasks(page_obj).as_list()
    if kernel:
        tasks.append(kernel_task(kernel_by_name(kernel)))
    gov = governor or FixedFrequencyGovernor(
        freq_hz=freq or spec.max_state.freq_hz, label="fixed"
    )
    context = RunContext(spec=spec, page_features=page_obj.features)
    return Engine(
        device=device,
        tasks=tasks,
        governor=gov,
        context=context,
        config=EngineConfig(dt_s=dt, max_time_s=max_time, record_trace=trace),
    )


class TestCompletion:
    def test_solo_load_completes(self):
        result = _engine().run()
        assert result.load_time_s is not None
        assert 0.1 < result.load_time_s < 2.0
        assert not result.timed_out

    def test_corunner_is_cancelled_when_page_finishes(self):
        engine = _engine(kernel="bfs")
        result = engine.run()
        kernel_summary = result.summary_for("kernel:bfs")
        assert kernel_summary.finish_time_s == pytest.approx(
            result.duration_s, abs=0.01
        )

    def test_duration_equals_load_time_when_not_timed_out(self):
        result = _engine().run()
        assert result.duration_s == pytest.approx(result.load_time_s, abs=0.01)

    def test_timeout_is_reported(self):
        result = _engine(page="aliexpress", freq=300e6, max_time=1.0).run()
        assert result.timed_out
        assert result.load_time_s is None
        assert result.ppw == 0.0

    def test_duration_bounded_run_without_gating(self):
        device = Device()
        engine = Engine(
            device=device,
            tasks=[kernel_task(kernel_by_name("srad"))],
            governor=FixedFrequencyGovernor(device.spec.max_state.freq_hz, "fixed"),
            context=RunContext(spec=device.spec),
            config=EngineConfig(dt_s=0.002, max_time_s=0.5),
        )
        result = engine.run()
        assert not result.timed_out
        assert result.load_time_s is None
        assert result.duration_s == pytest.approx(0.5, abs=0.01)


class TestPhysicsCoupling:
    def test_interference_slows_the_load(self):
        solo = _engine().run().load_time_s
        contended = _engine(kernel="needleman-wunsch").run().load_time_s
        assert contended > solo * 1.1

    def test_interference_inflates_browser_mpki(self):
        solo = _engine().run().summary_for("browser-main:amazon").mpki
        contended = (
            _engine(kernel="needleman-wunsch")
            .run()
            .summary_for("browser-main:amazon")
            .mpki
        )
        assert contended > solo

    def test_higher_frequency_loads_faster_but_draws_more_power(self):
        slow = _engine(freq=729.6e6).run()
        fast = _engine(freq=2265.6e6).run()
        assert fast.load_time_s < slow.load_time_s
        assert fast.avg_power_w > slow.avg_power_w

    def test_speedup_is_sublinear_in_frequency(self):
        """The memory wall: 3.1x frequency gives less than 3.1x speedup."""
        slow = _engine(page="imgur", kernel="backprop", freq=729.6e6).run()
        fast = _engine(page="imgur", kernel="backprop", freq=2265.6e6).run()
        speedup = slow.load_time_s / fast.load_time_s
        assert speedup < 2265.6 / 729.6

    def test_temperature_rises_during_the_load(self):
        """Sustained load heats the package above its initial 48 C.

        The helper thread finishes before the main thread, so power
        (and temperature) can dip late in the run -- the peak, not the
        final sample, shows the heating.
        """
        result = _engine(page="aliexpress", kernel="backprop").run()
        assert result.trace.max_temperature_c() > 50.0
        assert result.avg_temperature_c > 48.0

    def test_energy_is_positive_and_consistent_with_power(self):
        result = _engine().run()
        assert result.energy_j > 0
        assert result.avg_power_w == pytest.approx(
            result.energy_j / result.duration_s
        )


class TestDeterminismAndRobustness:
    def test_identical_runs_are_identical(self):
        first = _engine().run()
        second = _engine().run()
        assert first.load_time_s == second.load_time_s
        assert first.energy_j == second.energy_j

    def test_step_size_only_perturbs_results_slightly(self):
        coarse = _engine(dt=0.008).run()
        fine = _engine(dt=0.001).run()
        assert coarse.load_time_s == pytest.approx(fine.load_time_s, rel=0.05)
        assert coarse.energy_j == pytest.approx(fine.energy_j, rel=0.05)

    def test_trace_can_be_disabled(self):
        result = _engine(trace=False).run()
        assert len(result.trace) == 0
        assert result.load_time_s is not None

    def test_trace_records_every_step(self):
        result = _engine(dt=0.002).run()
        expected_steps = result.duration_s / 0.002
        assert len(result.trace) == pytest.approx(expected_steps, abs=2)

    def test_counters_match_task_summaries(self):
        """Raw counter totals equal the per-task summaries."""
        engine = _engine()
        result = engine.run()
        main = result.summary_for("browser-main:amazon")
        workload_total = sum(
            p.instructions
            for p in browser_tasks(page_by_name("amazon")).main.phases
        )
        assert main.instructions == pytest.approx(workload_total, rel=1e-6)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(dt_s=0.0)
        with pytest.raises(ValueError):
            EngineConfig(dt_s=1.0, max_time_s=0.5)


class TestGovernorInteraction:
    def test_fixed_governor_never_switches(self):
        result = _engine().run()
        assert result.switch_count == 0
        assert result.switch_stall_s == 0.0

    def test_decisions_are_logged_at_the_interval(self):
        gov = FixedFrequencyGovernor(freq_hz=2265.6e6, label="fixed")
        gov.interval_s = 0.05
        result = _engine(page="msn", governor=gov).run()
        assert len(result.decisions.times_s) == pytest.approx(
            result.duration_s / 0.05, abs=2
        )

    def test_switching_governor_pays_stall_and_energy(self):
        class Alternator(FixedFrequencyGovernor):
            def decide(self, sample, context):
                if sample.freq_hz == 2265.6e6:
                    return 1497.6e6
                return 2265.6e6

        gov = Alternator(freq_hz=2265.6e6, label="alternator")
        result = _engine(page="msn", governor=gov).run()
        assert result.switch_count > 2
        assert result.switch_stall_s > 0.0
        assert result.switch_energy_j > 0.0
