"""Fleet engine: lockstep rows vs the single-device oracle.

The contract under test is the tentpole's bit-exactness guarantee:
every row sliced out of a :class:`~repro.sim.fleet_engine.FleetEngine`
run reproduces the single-device
:class:`~repro.sim.engine.ReferenceEngine` result field-exactly --
result scalars, task summaries, decisions, completions, phase stamps
and (when tracing) every trace column, compared with ``==``.

Two layers, mirroring ``test_engine_equivalence.py``:

* A curated heterogeneous fleet (pages x co-runners x governors x
  ambients x dt, traces on) checked row by row against the oracle.
* Hypothesis-driven random rows embedded in a mixed fleet, so each
  random device shares its thermal sweeps with rows of *different*
  regime lengths and step sizes.
"""

from contextlib import contextmanager
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.fleet_engine as fleet_module
from repro.sim.engine import EngineConfig
from repro.sim.fleet_engine import (
    FleetEngine,
    FleetRowSpec,
    build_row_engine,
    heterogeneous_fleet,
)
from tests.sim.test_engine_equivalence import assert_bit_identical


@contextmanager
def batched_path(tail: int = 0):
    """Pin the solo-tail cutoff so small fleets run the batched epochs.

    The production cutoff (``_SOLO_TAIL_ROWS``) finishes fleets at or
    below 16 live rows on the solo loop, which would let these small
    equivalence fixtures bypass the very code under test.
    """
    saved = fleet_module._SOLO_TAIL_ROWS
    fleet_module._SOLO_TAIL_ROWS = tail
    try:
        yield
    finally:
        fleet_module._SOLO_TAIL_ROWS = saved


def _reference(spec: FleetRowSpec):
    return build_row_engine(spec, engine="reference").run()


class TestHeterogeneousFleet:
    def test_same_arguments_same_fleet(self):
        assert heterogeneous_fleet(12, seed=2) == heterogeneous_fleet(12, seed=2)

    def test_seed_rotates_the_assignment(self):
        assert heterogeneous_fleet(12, seed=2) != heterogeneous_fleet(12, seed=3)

    def test_population_is_heterogeneous(self):
        specs = heterogeneous_fleet(48)
        assert len({spec.page for spec in specs}) > 1
        assert len({spec.kernel for spec in specs}) > 1
        assert len({spec.governor for spec in specs}) > 1
        assert len({spec.ambient_c for spec in specs}) > 1
        assert len({spec.dt_s for spec in specs}) > 1

    def test_fixed_rows_carry_an_operating_point(self):
        for spec in heterogeneous_fleet(24):
            if spec.governor == "fixed":
                assert spec.freq_hz is not None
            else:
                assert spec.freq_hz is None

    def test_record_trace_propagates(self):
        assert all(
            spec.record_trace
            for spec in heterogeneous_fleet(4, record_trace=True)
        )

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one"):
            heterogeneous_fleet(0)


class TestRowSpec:
    def test_rejects_unknown_governor(self):
        with pytest.raises(KeyError, match="powersave"):
            FleetRowSpec(page="amazon", governor="powersave")

    def test_fixed_requires_a_frequency(self):
        with pytest.raises(ValueError, match="freq_hz"):
            FleetRowSpec(page="amazon", governor="fixed")


class TestConstruction:
    def test_requires_exactly_one_source(self):
        spec = FleetRowSpec(page="amazon")
        with pytest.raises(ValueError, match="exactly one"):
            FleetEngine()
        with pytest.raises(ValueError, match="exactly one"):
            FleetEngine(rows=[spec], engines=[build_row_engine(spec)])

    def test_rejects_reference_engines(self):
        spec = FleetRowSpec(page="amazon")
        with pytest.raises(TypeError, match="oracle"):
            FleetEngine(engines=[build_row_engine(spec, engine="reference")])

    def test_rejects_shared_engines(self):
        engine = build_row_engine(FleetRowSpec(page="amazon"))
        with pytest.raises(ValueError, match="its own engine"):
            FleetEngine(engines=[engine, engine])

    def test_coerces_engines_to_the_fast_path(self):
        engine = build_row_engine(FleetRowSpec(page="amazon"))
        engine.config = replace(engine.config, engine="reference")
        assert isinstance(engine.config, EngineConfig)
        FleetEngine(engines=[engine])
        assert engine.config.engine == "fast"

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetEngine(engines=[])


class TestBitExactness:
    def test_curated_fleet_matches_reference_with_traces(self):
        specs = heterogeneous_fleet(12, seed=5, record_trace=True)
        with batched_path():
            results = FleetEngine(rows=specs).run()
        assert len(results) == len(specs)
        for spec, result in zip(specs, results):
            assert_bit_identical(_reference(spec), result)

    def test_solo_tail_handoff_matches_reference(self):
        """Rows that start batched and finish on the solo tail."""
        specs = heterogeneous_fleet(12, seed=5)
        with batched_path(tail=6):
            results = FleetEngine(rows=specs).run()
        for spec, result in zip(specs, results):
            assert_bit_identical(_reference(spec), result)

    def test_timeout_rows_match_reference(self):
        specs = (
            FleetRowSpec(page="aliexpress", kernel="srad", max_time_s=0.2),
            FleetRowSpec(page="amazon", governor="fixed", freq_hz=729.6e6),
            FleetRowSpec(page="msn", dt_s=0.004, max_time_s=0.1),
        )
        with batched_path():
            results = FleetEngine(rows=specs).run()
        assert results[0].load_time_s is None
        assert results[2].load_time_s is None
        for spec, result in zip(specs, results):
            assert_bit_identical(_reference(spec), result)

    def test_rerun_reproduces_the_fleet(self):
        fleet = FleetEngine(rows=heterogeneous_fleet(6, seed=9))
        with batched_path():
            first = fleet.run()
            second = fleet.run()
        for a, b in zip(first, second):
            assert_bit_identical(a, b)


#: Filler rows with deliberately different step sizes and regime
#: lengths, so random rows never get a sweep to themselves.
_FILLER_ROWS = (
    FleetRowSpec(page="espn", governor="fixed", freq_hz=2265.6e6),
    FleetRowSpec(page="amazon", kernel="srad", dt_s=0.004),
)


@settings(max_examples=15, deadline=None)
@given(
    page=st.sampled_from(("amazon", "espn", "aliexpress", "msn")),
    kernel=st.sampled_from((None, "backprop", "needleman-wunsch", "srad")),
    governor=st.sampled_from(("fixed", "interactive", "ondemand")),
    freq_hz=st.sampled_from((729.6e6, 1190.4e6, 1728.0e6, 2265.6e6)),
    ambient=st.sampled_from(((25.0, 48.0), (5.0, 26.0), (35.0, 58.0))),
    dt_s=st.sampled_from((0.002, 0.004)),
    record_trace=st.booleans(),
)
def test_random_row_matches_reference(
    page, kernel, governor, freq_hz, ambient, dt_s, record_trace
):
    """Property: any row of a mixed fleet equals its solo oracle run."""
    spec = FleetRowSpec(
        page=page,
        kernel=kernel,
        governor=governor,
        freq_hz=freq_hz if governor == "fixed" else None,
        ambient_c=ambient[0],
        initial_junction_c=ambient[1],
        dt_s=dt_s,
        record_trace=record_trace,
    )
    with batched_path():
        results = FleetEngine(rows=(spec,) + _FILLER_ROWS).run()
    assert_bit_identical(_reference(spec), results[0])
