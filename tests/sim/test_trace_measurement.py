"""Trace recording and measurement-noise tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.measurement import (
    Measurement,
    _lognormal_factor,
    observe,
    percent_error,
)
from repro.sim.trace import Trace
from repro.soc.power import PowerBreakdown


def _breakdown(total=3.0):
    return PowerBreakdown(
        core_dynamic_w=total - 1.5,
        memory_w=0.3,
        leakage_w=0.3,
        rest_of_device_w=0.9,
    )


class TestTrace:
    def test_record_appends_parallel_series(self):
        trace = Trace()
        trace.record(0.1, 1e9, _breakdown(), 50.0)
        trace.record(0.2, 2e9, _breakdown(), 51.0)
        assert len(trace) == 2
        assert list(trace.freqs_hz) == [1e9, 2e9]
        assert list(trace.soc_temperature_c) == [50.0, 51.0]

    def test_mean_power(self):
        trace = Trace()
        trace.record(0.1, 1e9, _breakdown(2.0), 50.0)
        trace.record(0.2, 1e9, _breakdown(4.0), 50.0)
        assert trace.mean_power_w() == pytest.approx(3.0)

    def test_mean_power_truncated(self):
        trace = Trace()
        trace.record(0.1, 1e9, _breakdown(2.0), 50.0)
        trace.record(0.2, 1e9, _breakdown(4.0), 50.0)
        assert trace.mean_power_w(until_s=0.15) == pytest.approx(2.0)

    def test_empty_trace_defaults(self):
        trace = Trace()
        assert trace.mean_power_w() == 0.0
        assert trace.max_temperature_c() == 0.0
        assert trace.frequency_residency() == {}

    def test_frequency_residency_sums_to_one(self):
        trace = Trace()
        for freq in (1e9, 1e9, 2e9, 1e9):
            trace.record(0.0, freq, _breakdown(), 50.0)
        residency = trace.frequency_residency()
        assert residency[1e9] == pytest.approx(0.75)
        assert sum(residency[f] for f in sorted(residency)) == pytest.approx(1.0)

    def test_max_temperature(self):
        trace = Trace()
        trace.record(0.1, 1e9, _breakdown(), 50.0)
        trace.record(0.2, 1e9, _breakdown(), 62.0)
        assert trace.max_temperature_c() == 62.0


class _FakeResult:
    """Minimal stand-in for RunResult in measurement tests."""

    def __init__(self, load=1.0, power=3.0, duration=1.0):
        self.load_time_s = load
        self.avg_power_w = power
        self.duration_s = duration


class TestObserve:
    def test_noise_free_observation_passes_through(self):
        result = _FakeResult(load=1.5, power=2.5)
        measurement = observe(result, rng=None)
        assert measurement.load_time_s == 1.5
        assert measurement.avg_power_w == 2.5

    def test_noise_is_seed_deterministic(self):
        result = _FakeResult()
        first = observe(result, rng=np.random.default_rng(3))
        second = observe(result, rng=np.random.default_rng(3))
        assert first.load_time_s == second.load_time_s
        assert first.avg_power_w == second.avg_power_w

    def test_noise_scale_is_respected(self):
        rng = np.random.default_rng(0)
        factors = [_lognormal_factor(rng, 0.02) for _ in range(4000)]
        assert np.mean(factors) == pytest.approx(1.0, abs=0.005)
        assert np.std(np.log(factors)) == pytest.approx(0.02, rel=0.1)

    def test_zero_noise_factor_is_one(self):
        assert _lognormal_factor(np.random.default_rng(0), 0.0) == 1.0

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            _lognormal_factor(np.random.default_rng(0), -0.1)

    def test_timeout_measurement_keeps_none_load(self):
        result = _FakeResult(load=None)
        measurement = observe(result, rng=np.random.default_rng(1))
        assert measurement.load_time_s is None
        assert measurement.ppw == 0.0

    def test_measurement_ppw_and_energy(self):
        measurement = Measurement(
            result=_FakeResult(duration=2.0), load_time_s=2.0, avg_power_w=3.0
        )
        assert measurement.ppw == pytest.approx(1.0 / 6.0)
        assert measurement.energy_j == pytest.approx(6.0)


class TestPercentError:
    def test_basic(self):
        assert percent_error(1.1, 1.0) == pytest.approx(0.1)
        assert percent_error(0.9, 1.0) == pytest.approx(0.1)

    def test_zero_observed_rejected(self):
        with pytest.raises(ValueError):
            percent_error(1.0, 0.0)

    @given(
        predicted=st.floats(0.1, 10.0),
        observed=st.floats(0.1, 10.0),
    )
    def test_always_non_negative(self, predicted, observed):
        assert percent_error(predicted, observed) >= 0.0
