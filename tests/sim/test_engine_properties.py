"""Property-based engine tests over randomized task sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.governors import FixedFrequencyGovernor
from repro.sim.engine import Engine, EngineConfig
from repro.sim.governor import RunContext
from repro.sim.task import Task, WorkPhase
from repro.soc.device import Device
from repro.soc.specs import nexus5_spec

MIB = 1024 * 1024

phase_strategy = st.builds(
    WorkPhase,
    name=st.just("phase"),
    instructions=st.floats(5e6, 4e8),
    cpi_base=st.floats(0.8, 2.0),
    l2_apki=st.floats(0.0, 60.0),
    solo_miss_ratio=st.floats(0.01, 0.4),
    working_set_bytes=st.floats(0.1 * MIB, 16 * MIB),
    mlp=st.floats(1.0, 2.5),
    capacitance_f=st.floats(0.3e-9, 0.6e-9),
)


def _run(phases_per_task, freq_hz=2265.6e6, dt=0.004):
    device = Device()
    tasks = []
    for core, phases in enumerate(phases_per_task):
        tasks.append(
            Task(
                task_id=f"t{core}",
                core=core,
                phases=tuple(phases),
                gating=(core == 0),
            )
        )
    engine = Engine(
        device=device,
        tasks=tasks,
        governor=FixedFrequencyGovernor(freq_hz=freq_hz, label="fixed"),
        context=RunContext(spec=device.spec),
        config=EngineConfig(dt_s=dt, max_time_s=30.0, record_trace=False),
    )
    return engine.run(), tasks


class TestEngineInvariants:
    @settings(max_examples=25)
    @given(
        phases=st.lists(phase_strategy, min_size=1, max_size=3),
        rival=st.lists(phase_strategy, min_size=1, max_size=2),
    )
    def test_instruction_conservation(self, phases, rival):
        """Every finished task retires exactly its phase budget."""
        result, tasks = _run([phases, rival])
        for task in tasks:
            summary = result.task_summaries[task.task_id]
            budget = sum(p.instructions for p in task.phases)
            if task.finish_time_s is not None and task.task_id == "t0":
                assert summary.instructions == pytest.approx(budget, rel=1e-9)
            else:
                # Relative tolerance: step-wise accumulation carries
                # float rounding at the 1e-15 level.
                assert summary.instructions <= budget * (1 + 1e-9) + 1e-6

    @settings(max_examples=25)
    @given(phases=st.lists(phase_strategy, min_size=1, max_size=3))
    def test_energy_time_and_temperature_are_physical(self, phases):
        result, _ = _run([phases])
        assert result.energy_j > 0
        assert result.duration_s > 0
        assert result.avg_power_w > 0.5  # at least the device floor
        ambient = Device().config.ambient.ambient_c
        assert result.final_temperature_c > ambient
        assert result.final_temperature_c < 120.0

    @settings(max_examples=15)
    @given(
        phases=st.lists(phase_strategy, min_size=1, max_size=2),
        freq_index=st.integers(0, 13),
    )
    def test_counters_match_summaries_at_any_frequency(self, phases, freq_index):
        freq = nexus5_spec().frequencies_hz[freq_index]
        result, tasks = _run([phases], freq_hz=freq)
        summary = result.task_summaries["t0"]
        # MPKI implied by accesses and misses is internally consistent.
        if summary.l2_accesses > 0:
            ratio = summary.l2_misses / summary.l2_accesses
            assert 0.0 <= ratio <= 1.0
        assert summary.busy_s <= result.duration_s + 1e-9

    @settings(max_examples=10)
    @given(phases=st.lists(phase_strategy, min_size=1, max_size=2))
    def test_adding_a_rival_never_speeds_up_the_gating_task(self, phases):
        solo, _ = _run([phases])
        rival_phase = WorkPhase(
            name="rival",
            instructions=1e9,
            cpi_base=1.0,
            l2_apki=60.0,
            solo_miss_ratio=0.15,
            working_set_bytes=16 * MIB,
            mlp=2.0,
            capacitance_f=0.42e-9,
        )
        contended, _ = _run([phases, [rival_phase]])
        if solo.load_time_s is not None and contended.load_time_s is not None:
            assert contended.load_time_s >= solo.load_time_s - 1e-6
