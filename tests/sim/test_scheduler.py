"""Static core-assignment tests."""

import pytest

from repro.sim.scheduler import SchedulingError, plan
from repro.sim.task import Task, WorkPhase


def _phase():
    return WorkPhase(
        name="p", instructions=100.0, cpi_base=1.0, l2_apki=1.0,
        solo_miss_ratio=0.1, working_set_bytes=1e6,
    )


def _task(task_id, core, **kwargs):
    return Task(task_id=task_id, core=core, phases=(_phase(),), **kwargs)


class TestPlan:
    def test_valid_placement(self, spec):
        tasks = [_task("a", 0, gating=True), _task("b", 1), _task("c", 2)]
        result = plan(tasks, spec)
        assert result.online_cores == (0, 1, 2)
        assert result.gating_task_ids == ("a",)
        assert result.tasks_by_core[1].task_id == "b"

    def test_empty_task_set_rejected(self, spec):
        with pytest.raises(SchedulingError):
            plan([], spec)

    def test_core_collision_rejected(self, spec):
        with pytest.raises(SchedulingError, match="assigned twice"):
            plan([_task("a", 0), _task("b", 0)], spec)

    def test_out_of_range_core_rejected(self, spec):
        with pytest.raises(SchedulingError, match="has 4 cores"):
            plan([_task("a", 4)], spec)

    def test_duplicate_task_id_rejected(self, spec):
        with pytest.raises(SchedulingError, match="duplicate"):
            plan([_task("a", 0), _task("a", 1)], spec)

    def test_no_gating_task_is_allowed_for_bounded_runs(self, spec):
        result = plan([_task("a", 2, looping=True)], spec)
        assert result.gating_task_ids == ()

    def test_fourth_core_can_stay_offline(self, spec):
        """The paper powers core 3 off; a plan never requires it."""
        result = plan([_task("a", 0, gating=True), _task("b", 1)], spec)
        assert 3 not in result.online_cores
