"""Shared fixtures.

Heavy artifacts (trained models, suite sweeps) are cached on disk via
:mod:`repro.experiments.cache`, so the first full run pays the
simulation cost and later runs are fast.  Unit tests never need them;
the integration tests use a deliberately small training configuration.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.experiments.harness import HarnessConfig
from repro.models.training import TrainingConfig, run_campaign, train_models
from repro.soc.specs import nexus5_spec

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    # Fixtures consumed inside @given tests here are read-only model
    # objects, so reuse across examples is safe.
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def spec():
    """The Nexus 5 platform description."""
    return nexus5_spec()


#: A small-but-real training configuration: three pages spanning the
#: complexity range, four frequencies spanning the bus groups.
SMALL_TRAINING = TrainingConfig(
    pages=("amazon", "msn", "espn"),
    freqs_hz=(729.6e6, 1190.4e6, 1728.0e6, 2265.6e6),
    dt_s=0.004,
    seed=7,
)


@pytest.fixture(scope="session")
def small_models():
    """Models trained on the small campaign (seconds, not minutes)."""
    observations = run_campaign(SMALL_TRAINING)
    return train_models(observations)


@pytest.fixture(scope="session")
def small_predictor(small_models):
    """Predictor backed by the small campaign."""
    return small_models.predictor


#: A deliberately different calibration: same pages and frequency
#: grid as SMALL_TRAINING but a different seed and much noisier
#: measurements, so its surfaces (and some of its fopt choices)
#: disagree with ``small_predictor`` -- the property the model-swap
#: tests need to tell "old model answered" from "new model answered".
ALT_TRAINING = TrainingConfig(
    pages=("amazon", "msn", "espn"),
    freqs_hz=(729.6e6, 1190.4e6, 1728.0e6, 2265.6e6),
    dt_s=0.004,
    seed=11,
    load_time_noise=0.08,
    power_noise=0.10,
)


@pytest.fixture(scope="session")
def alt_predictor():
    """A predictor that visibly disagrees with ``small_predictor``."""
    observations = run_campaign(ALT_TRAINING)
    return train_models(observations).predictor


@pytest.fixture(scope="session")
def fast_config():
    """Harness config with a coarser engine step for integration tests."""
    return HarnessConfig(dt_s=0.004)
