"""CLI smoke tests: every core command exits cleanly via ``main(argv)``.

Unlike the end-to-end CLI tests (which assert on specific command
output), these just drive each command with tiny configurations and a
temporary cache directory -- the "does the wiring hold together"
check, covering ``list``, ``run``, ``sweep`` and ``serve-bench``.
"""

import json

import pytest

import repro.api
from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated(monkeypatch, tmp_path, small_models):
    """Tiny models and a throwaway cache for every command."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setattr(
        repro.api, "default_trained_models", lambda config=None: small_models
    )
    monkeypatch.setattr(
        repro.api, "default_predictor", lambda config=None: small_models.predictor
    )


def test_list_smoke(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "pages:" in out
    assert "governors:" in out


def test_run_smoke(capsys):
    assert main(["run", "amazon", "--governor", "interactive"]) == 0
    assert "load time" in capsys.readouterr().out


def test_sweep_smoke(capsys):
    assert main(["sweep", "amazon"]) == 0
    assert "fopt=" in capsys.readouterr().out


def test_serve_bench_smoke(capsys, tmp_path):
    output = tmp_path / "BENCH_serve.json"
    code = main([
        "serve-bench", "--smoke",
        "--devices", "4", "--requests", "64",
        "--batch-size", "16", "--qps", "50000",
        "--output", str(output),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "throughput" in out
    assert "0 fopt mismatches" in out
    record = json.loads(output.read_text())
    assert record["fopt_mismatches"] == 0
    assert record["requests"] == 64
    assert record["throughput_rps"] > 0


def test_serve_bench_is_registered():
    parser = build_parser()
    args = parser.parse_args(["serve-bench", "--smoke"])
    assert args.smoke
    assert args.batch_size == 64  # default flush-on-size
