"""Portability: the whole pipeline on a re-parametrized platform.

The paper's claim: "the insights and the DORA frequency governor ...
are also applicable to other smartphone platforms with
re-parametrization."  Everything above the :class:`PlatformSpec`
interface must therefore run unchanged against a different SoC
description -- here, a hypothetical six-core part with a 10-state
ladder and a three-band bus mapping.
"""

import pytest

from repro.experiments.harness import HarnessConfig, make_governor, run_workload
from repro.models.training import TrainingConfig, run_campaign, train_models
from repro.soc.device import DeviceConfig
from repro.soc.specs import generic_hexcore_spec


@pytest.fixture(scope="module")
def hexcore_device():
    return DeviceConfig(spec=generic_hexcore_spec())


@pytest.fixture(scope="module")
def hexcore_models(hexcore_device):
    config = TrainingConfig(
        pages=("amazon", "msn", "espn"),
        freqs_hz=(600e6, 1000e6, 1500e6, 2100e6, 2600e6),
        dt_s=0.004,
        seed=21,
    )
    observations = run_campaign(config, device_config=hexcore_device)
    return train_models(observations, device_config=hexcore_device)


@pytest.fixture(scope="module")
def hexcore_config(hexcore_device):
    return HarnessConfig(dt_s=0.004, device=hexcore_device)


class TestPortability:
    def test_campaign_trains_on_the_new_platform(self, hexcore_models):
        assert len(hexcore_models.observations) == 3 * 4 * 5
        # Piecewise structure follows the *new* bus mapping.
        segments = hexcore_models.load_time_model.surfaces.segments
        assert set(segments) <= {300e6, 600e6, 933e6}
        assert len(segments) >= 2

    def test_predictor_sweeps_the_new_evaluation_ladder(self, hexcore_models):
        candidates = hexcore_models.predictor.candidates()
        assert len(candidates) == 7
        assert max(candidates) == pytest.approx(2600e6)

    def test_dora_meets_the_deadline_on_the_new_platform(
        self, hexcore_models, hexcore_config
    ):
        governor = make_governor("DORA", hexcore_models.predictor, hexcore_config)
        result = run_workload("amazon", "bfs", governor, hexcore_config)
        assert result.load_time_s is not None
        assert result.load_time_s <= hexcore_config.deadline_s

    def test_dora_beats_interactive_on_a_slack_workload(
        self, hexcore_models, hexcore_config
    ):
        dora = run_workload(
            "amazon",
            "kmeans",
            make_governor("DORA", hexcore_models.predictor, hexcore_config),
            hexcore_config,
        )
        baseline = run_workload(
            "amazon",
            "kmeans",
            make_governor("interactive", None, hexcore_config),
            hexcore_config,
        )
        assert dora.ppw > baseline.ppw * 1.03

    def test_dora_runs_interior_frequencies(self, hexcore_models, hexcore_config):
        governor = make_governor("DORA", hexcore_models.predictor, hexcore_config)
        result = run_workload("msn", "srad2", governor, hexcore_config)
        chosen = set(result.decisions.frequencies_hz)
        assert chosen  # made decisions
        assert max(chosen) < 2600e6  # not pinned at fmax

    def test_leakage_fit_adapts_to_the_new_voltage_ladder(self, hexcore_models):
        # The fitted model covers the platform's wider voltage range.
        prediction = hexcore_models.leakage_model.predict(1.16, 60.0)
        assert prediction > hexcore_models.leakage_model.predict(0.78, 60.0)
