"""End-to-end integration: campaign -> models -> DORA -> evaluation.

Uses the session-scoped small campaign (3 pages, 4 frequencies) so the
whole pipeline runs in seconds while still exercising every layer:
page generation, the engine, counter sampling, model training, and the
online governor loop.
"""

import pytest

from repro.experiments.harness import (
    frequency_sweep,
    make_governor,
    oracle_points,
    run_workload,
)


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


class TestDoraEndToEnd:
    def test_dora_meets_a_comfortably_feasible_deadline(
        self, small_predictor, fast_config
    ):
        governor = make_governor("DORA", small_predictor, fast_config)
        result = run_workload("amazon", "bfs", governor, fast_config)
        assert result.load_time_s is not None
        assert result.load_time_s <= fast_config.deadline_s

    def test_dora_beats_performance_governor_on_an_easy_page(
        self, small_predictor, fast_config
    ):
        """For a fast page the deadline is slack, so DORA ~ fE and must
        beat pinning fmax on energy efficiency."""
        dora = run_workload(
            "amazon",
            "kmeans",
            make_governor("DORA", small_predictor, fast_config),
            fast_config,
        )
        pinned = run_workload(
            "amazon",
            "kmeans",
            make_governor("performance", None, fast_config),
            fast_config,
        )
        assert dora.ppw > pinned.ppw * 1.05

    def test_dora_runs_below_fmax_when_the_deadline_allows(
        self, small_predictor, fast_config
    ):
        governor = make_governor("DORA", small_predictor, fast_config)
        result = run_workload("amazon", "kmeans", governor, fast_config)
        chosen = set(result.decisions.frequencies_hz)
        assert max(chosen) < fast_config.device.spec.max_state.freq_hz

    def test_dora_escalates_on_a_heavy_page(self, small_predictor, fast_config):
        """espn is deadline-bound: DORA must choose a high setting."""
        governor = make_governor("DORA", small_predictor, fast_config)
        result = run_workload("espn", "backprop", governor, fast_config)
        assert result.decisions.frequencies_hz[-1] >= 1.7e9

    def test_dora_reacts_to_interference_within_a_load(
        self, small_predictor, fast_config
    ):
        """The first decision is made blind; once counters show the
        co-runner, predictions (and possibly fopt) incorporate it."""
        governor = make_governor("DORA", small_predictor, fast_config)
        run_workload("msn", "needleman-wunsch", governor, fast_config)
        observed_mpki = [
            point.load_time_s for point in governor.last_table
        ]
        assert governor.last_fopt_hz > 0
        assert len(observed_mpki) == len(small_predictor.candidates())


class TestOracleConsistency:
    def test_measured_sweep_supports_oracle_extraction(self, fast_config):
        sweep = frequency_sweep("msn", "bfs", fast_config)
        assert len(sweep) == 8
        oracle = oracle_points(sweep, fast_config.deadline_s)
        assert oracle.fd_hz is not None
        assert oracle.fd_hz <= oracle.fopt_hz or oracle.fd_hz == oracle.fopt_hz

    def test_fe_run_matches_the_sweep_point(self, fast_config):
        from repro.core.governors import FixedFrequencyGovernor
        from repro.core.ppw import find_fe

        sweep = frequency_sweep("msn", "bfs", fast_config)
        fe = find_fe(sweep)
        rerun = run_workload(
            "msn",
            "bfs",
            FixedFrequencyGovernor(freq_hz=fe.freq_hz, label="fE"),
            fast_config,
        )
        assert rerun.load_time_s == pytest.approx(fe.load_time_s, rel=1e-6)


class TestGovernorRanking:
    """The paper's qualitative ordering on one deadline-slack combo."""

    @pytest.fixture(scope="class")
    def runs(self, small_predictor, fast_config):
        results = {}
        for name in ("interactive", "performance", "EE", "DORA"):
            predictor = None if name in ("interactive", "performance") else small_predictor
            governor = make_governor(name, predictor, fast_config)
            results[name] = run_workload("amazon", "srad2", governor, fast_config)
        return results

    def test_everyone_finishes(self, runs):
        assert all(r.load_time_s is not None for r in runs.values())

    def test_performance_is_fastest(self, runs):
        fastest = min(runs.values(), key=lambda r: r.load_time_s)
        assert runs["performance"].load_time_s == fastest.load_time_s

    def test_dora_and_ee_beat_the_baselines(self, runs):
        assert runs["DORA"].ppw > runs["interactive"].ppw
        assert runs["EE"].ppw > runs["performance"].ppw

    def test_dora_matches_ee_when_deadline_is_slack(self, runs):
        assert runs["DORA"].ppw == pytest.approx(runs["EE"].ppw, rel=0.10)
