"""CLI end-to-end tests against the small trained bundle.

The heavy CLI paths (``run``, ``sweep``, ``train``) are driven with the
session-scoped small predictor patched in, so the commands execute
their full logic in seconds.
"""

import json

import pytest

import repro.api
from repro.cli import main


@pytest.fixture(autouse=True)
def small_bundle(monkeypatch, small_models):
    """Route the CLI's model loading to the small campaign."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setattr(repro.api, "default_trained_models", lambda config=None: small_models)
    monkeypatch.setattr(
        repro.api, "default_predictor", lambda config=None: small_models.predictor
    )


class TestRunCommand:
    def test_run_prints_the_measurement(self, capsys):
        code = main(["run", "amazon", "--kernel", "bfs", "--governor", "DORA"])
        out = capsys.readouterr().out
        assert code == 0
        assert "load time" in out
        assert "PPW" in out
        assert "met 3.0 s deadline" in out

    def test_run_with_plain_governor(self, capsys):
        code = main(["run", "amazon", "--governor", "performance"])
        assert code == 0
        assert "performance" in capsys.readouterr().out

    def test_run_reports_misses(self, capsys):
        code = main([
            "run", "espn", "--kernel", "needleman-wunsch",
            "--governor", "performance", "--deadline", "1.0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "MISSED" in out


class TestSweepCommand:
    def test_sweep_prints_oracle_points(self, capsys):
        code = main(["sweep", "msn", "--kernel", "bfs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fE=" in out
        assert "fopt=" in out
        assert out.count("G ") >= 8  # eight evaluation frequencies


class TestTrainCommand:
    def test_train_saves_a_loadable_bundle(self, capsys, tmp_path):
        target = tmp_path / "bundle.json"
        code = main(["train", "--output", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "accuracy" in out
        data = json.loads(target.read_text())
        assert data["format"] == "repro-dora-models"

        from repro.models.serialization import load_predictor

        predictor = load_predictor(target)
        assert len(predictor.candidates()) == 8


class TestFiguresCommand:
    def test_fig05_renders_and_exports(self, capsys, tmp_path):
        code = main(["figures", "--only", "fig05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "surface selection" in out

    def test_characterize_command_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["characterize"])
        assert callable(args.func)
