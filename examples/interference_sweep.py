"""Interference sweep: how co-runner intensity reshapes the trade-off.

For one page, sweeps a synthetic co-runner across the whole memory-
intensity spectrum and reports, at each point: the measured load time
at fmax, the oracle energy-optimal frequency fE, the lowest deadline-
meeting frequency fD, and what DORA actually picks and achieves.

This is the paper's Section II motivation end to end: as interference
grows, load times stretch, fD climbs, fE sinks, and a fixed-frequency
policy cannot stay optimal.

Usage::

    python examples/interference_sweep.py [page] [deadline_s]
"""

import sys

from repro.api import default_predictor
from repro.browser.browser import browser_tasks
from repro.browser.pages import page_by_name
from repro.core.dora import DoraGovernor
from repro.core.governors import FixedFrequencyGovernor
from repro.core.ppw import FrequencyPrediction, find_fd, find_fe
from repro.sim.engine import Engine, EngineConfig
from repro.sim.governor import RunContext
from repro.soc.device import Device
from repro.workloads.generator import synthetic_task


def run_once(page_name, intensity, governor, deadline_s):
    """One engine run with a synthetic co-runner at ``intensity``."""
    device = Device()
    page = page_by_name(page_name)
    tasks = browser_tasks(page).as_list()
    if intensity is not None:
        tasks.append(synthetic_task(intensity))
    context = RunContext(
        spec=device.spec, deadline_s=deadline_s, page_features=page.features
    )
    engine = Engine(
        device=device,
        tasks=tasks,
        governor=governor,
        context=context,
        config=EngineConfig(record_trace=False),
    )
    return engine.run()


def sweep_point(page_name, intensity, predictor, deadline_s):
    """Oracle points + DORA's behaviour at one intensity."""
    spec = Device().spec
    measured = []
    for state in spec.evaluation_states():
        governor = FixedFrequencyGovernor(freq_hz=state.freq_hz, label="fixed")
        result = run_once(page_name, intensity, governor, deadline_s)
        if result.load_time_s is not None:
            measured.append(
                FrequencyPrediction(
                    freq_hz=state.freq_hz,
                    load_time_s=result.load_time_s,
                    power_w=result.avg_power_w,
                )
            )
    fe = find_fe(measured)
    fd = find_fd(measured, deadline_s)
    dora = run_once(
        page_name, intensity, DoraGovernor(predictor=predictor), deadline_s
    )
    fmax_load = max(measured, key=lambda p: p.freq_hz).load_time_s
    return fmax_load, fd, fe, dora


def main() -> None:
    page = sys.argv[1] if len(sys.argv) > 1 else "hao123"
    deadline_s = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0
    predictor = default_predictor()

    print(f"page={page}  deadline={deadline_s:.1f}s")
    print(f"{'intensity':>9} {'load@fmax':>10} {'fD':>6} {'fE':>6} "
          f"{'DORA load':>10} {'DORA PPW':>9} {'meets':>6}")
    for intensity in (None, 0.0, 0.25, 0.5, 0.75, 1.0):
        fmax_load, fd, fe, dora = sweep_point(
            page, intensity, predictor, deadline_s
        )
        label = "solo" if intensity is None else f"{intensity:.2f}"
        fd_text = f"{fd.freq_hz / 1e9:.2f}" if fd else "none"
        meets = (
            "yes"
            if dora.load_time_s is not None and dora.load_time_s <= deadline_s
            else "NO"
        )
        load = f"{dora.load_time_s:.2f}s" if dora.load_time_s else "timeout"
        print(
            f"{label:>9} {fmax_load:>9.2f}s {fd_text:>6} "
            f"{fe.freq_hz / 1e9:>6.2f} {load:>10} {dora.ppw:>9.4f} {meets:>6}"
        )


if __name__ == "__main__":
    main()
