"""Phase anatomy: where a page load spends its time and energy.

Loads one page under DORA with tracing enabled and dissects the run:
per-pipeline-phase durations and energy, the whole-run energy split by
source (cores / memory / leakage / rest-of-device), and the frequency
timeline showing when DORA made its decisions.

Usage::

    python examples/phase_anatomy.py [page] [kernel]
"""

import sys

from repro import quick_run
from repro.sim.analysis import (
    energy_breakdown,
    frequency_timeline,
    phase_breakdown,
)


def main() -> None:
    page = sys.argv[1] if len(sys.argv) > 1 else "imdb"
    kernel = sys.argv[2] if len(sys.argv) > 2 else "bfs"
    if kernel == "none":
        kernel = None

    result = quick_run(page, kernel=kernel, governor="DORA", record_trace=True)
    if result.load_time_s is None:
        print("the page never finished loading")
        return

    print(f"{page} (+{kernel or 'nothing'}) under DORA: "
          f"{result.load_time_s:.2f}s, {result.energy_j:.1f}J")

    print("\npipeline phases:")
    print(f"  {'phase':<8} {'start':>7} {'duration':>9} {'energy':>8} {'mean freq':>10}")
    for phase in phase_breakdown(result, f"browser-main:{page}"):
        print(
            f"  {phase.name:<8} {phase.start_s:>6.2f}s {phase.duration_s:>8.2f}s "
            f"{phase.energy_j:>7.2f}J {phase.mean_freq_hz / 1e9:>9.2f}G"
        )

    split = energy_breakdown(result.trace)
    print("\nenergy by source:")
    for component in ("core_dynamic", "memory", "leakage", "rest_of_device"):
        value = getattr(split, f"{component}_j")
        print(f"  {component:<15} {value:>7.2f}J ({split.fraction(component):>4.0%})")

    print("\nfrequency timeline:")
    for time_s, freq_hz in frequency_timeline(result.trace):
        print(f"  t={time_s:>5.2f}s -> {freq_hz / 1e9:.2f} GHz")
    print(f"\npeak package temperature: {result.trace.max_temperature_c():.1f} C")


if __name__ == "__main__":
    main()
