"""Deadline tuning: DORA across user-satisfaction targets (Fig. 11).

The QoS deadline is a *user input* -- DORA never retrains when it
changes.  This example sweeps the target from an aggressive 1 s to a
relaxed 10 s for a heavy page under high interference and shows the
staircase: fmax when the target is tight, stepping down through
deadline-bound settings, then a plateau at the energy-optimal fE.

Usage::

    python examples/deadline_tuning.py [page]
"""

import sys

from repro.api import default_predictor
from repro.experiments.figures import fig11_deadline_sweep
from repro.experiments.harness import HarnessConfig


def main() -> None:
    page = sys.argv[1] if len(sys.argv) > 1 else "espn"
    predictor = default_predictor()
    result = fig11_deadline_sweep(
        page_name=page,
        predictor=predictor,
        config=HarnessConfig(),
        deadlines_s=(1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 6, 7, 8, 9, 10),
    )
    print(f"page={result.page_name}  co-runner={result.kernel_name}")
    print(f"{'deadline':>9} {'fopt':>6} {'load':>8} {'regime':>14}")
    plateau = min(freq for freq, _ in result.choices.values())
    for deadline in sorted(result.choices):
        freq, load = result.choices[deadline]
        if freq == max(f for f, _ in result.choices.values()):
            regime = "QoS-first"
        elif freq == plateau:
            regime = "energy-optimal"
        else:
            regime = "deadline-bound"
        load_text = f"{load:.2f}s" if load is not None else "timeout"
        print(f"{deadline:>8.1f}s {freq / 1e9:>5.2f}G {load_text:>8} {regime:>14}")
    print()
    print("Relaxing the target past the staircase changes nothing: the")
    print("plateau is fE, the battery-optimal operating point.")


if __name__ == "__main__":
    main()
