"""Train DORA's models from scratch and inspect what they learned.

Runs a (configurable) measurement campaign, fits the leakage,
load-time, and power models, prints the Fig. 5-style accuracy
statistics, and demonstrates a few one-off predictions -- including
how the predicted optimum moves when interference appears.

Usage::

    python examples/train_and_inspect_models.py [--full]

Without ``--full`` a reduced campaign (6 pages x 8 frequencies) keeps
the run under a minute.
"""

import sys

from repro.browser.pages import page_by_name
from repro.core.ppw import select_fopt
from repro.models.training import (
    TrainingConfig,
    overall_accuracy,
    page_error_summary,
    run_campaign,
    train_models,
)
from repro.soc.specs import nexus5_spec


def main() -> None:
    if "--full" in sys.argv:
        config = TrainingConfig()
    else:
        spec = nexus5_spec()
        config = TrainingConfig(
            pages=("amazon", "reddit", "msn", "bbc", "espn", "imdb"),
            freqs_hz=spec.evaluation_freqs_hz,
            dt_s=0.004,
        )

    print("running the measurement campaign ...")
    observations = run_campaign(config)
    print(f"  {len(observations)} observations "
          f"({len(set(o.page_name for o in observations))} pages, "
          f"{len(set(round(o.freq_hz) for o in observations))} frequencies)")

    models = train_models(observations)
    time_acc, power_acc = overall_accuracy(models)
    print(f"  load-time model accuracy: {time_acc:.1%} (paper: 97.5%)")
    print(f"  power model accuracy:     {power_acc:.1%} (paper: 96%)")
    print(f"  leakage fit RMS residual: {models.leakage_model.rms_error_w * 1000:.1f} mW")

    print("\nper-page mean errors (load time / power):")
    for page, (time_err, power_err) in sorted(page_error_summary(models).items()):
        print(f"  {page:<12} {time_err:>6.1%} / {power_err:.1%}")

    predictor = models.predictor
    census = page_by_name("reddit").features
    print("\npredicted trade-off for reddit (no interference, 48 C):")
    print(f"  {'freq':>6} {'load':>7} {'power':>7} {'PPW':>8}")
    quiet = predictor.prediction_table(census, 0.0, 0.0, 48.0)
    for point in quiet:
        print(f"  {point.freq_hz / 1e9:>5.2f}G {point.load_time_s:>6.2f}s "
              f"{point.power_w:>6.2f}W {point.ppw:>8.4f}")
    noisy = predictor.prediction_table(census, 10.0, 1.0, 55.0)
    for label, table in (("no interference", quiet), ("MPKI=10 co-runner", noisy)):
        fopt = select_fopt(table, 3.0)
        print(f"  fopt under {label}: {fopt.freq_hz / 1e9:.2f} GHz "
              f"(predicted load {fopt.load_time_s:.2f}s)")


if __name__ == "__main__":
    main()
