"""Quickstart: load one page under DORA and under the Android baseline.

Runs Reddit next to a memory-hungry co-runner (needleman-wunsch) under
both the default Android ``interactive`` governor and DORA, then prints
load time, energy, and energy efficiency side by side.

The first invocation trains DORA's models (a minute or two); the
trained bundle is cached on disk, so later runs start instantly.

Usage::

    python examples/quickstart.py [page] [kernel]
"""

import sys

from repro import quick_run
from repro.workloads.kernels import all_kernels


def main() -> None:
    page = sys.argv[1] if len(sys.argv) > 1 else "reddit"
    kernel = sys.argv[2] if len(sys.argv) > 2 else "needleman-wunsch"
    if kernel == "none":
        kernel = None

    print(f"page={page}  co-runner={kernel or 'none'}  deadline=3.0 s")
    print(f"(available co-runners: {', '.join(k.name for k in all_kernels())})")
    print()
    print(f"{'governor':<12} {'load time':>10} {'avg power':>10} "
          f"{'energy':>8} {'PPW':>8} {'switches':>9}")

    baseline_ppw = None
    for governor in ("interactive", "performance", "DORA"):
        result = quick_run(page, kernel=kernel, governor=governor)
        if result.load_time_s is None:
            print(f"{governor:<12} {'timeout':>10}")
            continue
        if governor == "interactive":
            baseline_ppw = result.ppw
        print(
            f"{governor:<12} {result.load_time_s:>9.2f}s "
            f"{result.avg_power_w:>9.2f}W {result.energy_j:>7.1f}J "
            f"{result.ppw:>8.4f} {result.switch_count:>9d}"
        )

    if baseline_ppw:
        dora = quick_run(page, kernel=kernel, governor="DORA")
        gain = dora.ppw / baseline_ppw - 1.0
        print()
        print(f"DORA vs interactive: {gain:+.1%} energy efficiency")
        residency = dora.trace.frequency_residency()
        busiest = max(residency, key=residency.get)
        print(f"DORA spent {residency[busiest]:.0%} of the load at "
              f"{busiest / 1e9:.2f} GHz "
              f"(peak temperature {dora.trace.max_temperature_c():.1f} C)")


if __name__ == "__main__":
    main()
