"""Reproduce every table and figure of the paper in one run.

Walks through all the evaluation-section experiments -- Figs. 1-3,
5-11, Table III, the headline numbers, the overhead study, the
decision-interval study, and the two design ablations -- printing each
one's rows/series.  Heavy artifacts are cached on disk, so the first
run takes several minutes and later runs finish in seconds.

Usage::

    python examples/reproduce_paper.py [--only fig07]
"""

import sys

from repro.api import default_predictor, default_trained_models
from repro.experiments import figures
from repro.experiments.harness import HarnessConfig
from repro.experiments.reporting import banner


def main() -> None:
    only = None
    if "--only" in sys.argv:
        only = sys.argv[sys.argv.index("--only") + 1]

    config = HarnessConfig()
    predictor = default_predictor()
    models = default_trained_models()

    sections = (
        ("fig01", "Fig. 1: interference vs frequency (Reddit)",
         lambda: figures.fig01_interference_range(config=config)),
        ("fig02", "Fig. 2: load time + E-delta vs intensity",
         lambda: figures.fig02_load_time_and_energy(config=config)),
        ("fig03", "Fig. 3: the two fopt regimes (ESPN / MSN)",
         lambda: figures.fig03_fopt_cases(config=config)),
        ("fig05", "Fig. 5 + V-A: model accuracy and surface selection",
         lambda: figures.fig05_model_accuracy(models)),
        ("fig06", "Fig. 6: fopt sensitivity to model errors",
         lambda: figures.fig06_fopt_sensitivity(config=config)),
        ("fig07", "Fig. 7: overall energy efficiency and QoS",
         lambda: figures.fig07_overall(predictor, config)),
        ("fig08", "Fig. 8: per-workload energy efficiency",
         lambda: figures.fig08_per_workload(predictor, config)),
        ("fig09", "Fig. 9: complexity x interference (Amazon / IMDB)",
         lambda: figures.fig09_complexity_interference(
             predictor=predictor, config=config)),
        ("fig10", "Fig. 10: leakage awareness",
         lambda: figures.fig10_leakage(predictor, config)),
        ("fig11", "Fig. 11: fopt vs deadline",
         lambda: figures.fig11_deadline_sweep(
             predictor=predictor, config=config)),
        ("tab03", "Table III: measured classification",
         lambda: figures.tab03_classification(config)),
        ("headline", "Headline numbers (abstract)",
         lambda: figures.headline(predictor, config)),
        ("overhead", "Section V-H: overhead",
         lambda: figures.overhead(predictor, config)),
        ("intervals", "Section IV-C: decision interval",
         lambda: figures.decision_interval_study(predictor, config)),
        ("ablation-interference", "Ablation: interference-blind models",
         lambda: figures.interference_ablation(predictor, config)),
        ("ablation-piecewise", "Ablation: piecewise vs global surfaces",
         lambda: figures.piecewise_ablation(models)),
    )

    for key, title, build in sections:
        if only is not None and only != key:
            continue
        print(banner(title))
        print(build().render())
        print()


if __name__ == "__main__":
    main()
